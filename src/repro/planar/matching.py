"""Sequential sampling of uniform perfect matchings (the Θ(n)-depth baseline).

The sampler repeatedly takes the smallest-labelled unmatched vertex ``v``,
computes the conditional probability that each incident edge is in the
matching via the Kasteleyn counting oracle
(``P[(v,u) ∈ M] = #PM(G - {v,u}) / #PM(G)``), samples one edge, removes both
endpoints, and repeats — ``n/2`` inherently sequential rounds.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.core.result import SampleResult, SamplerReport
from repro.planar.graphs import PlanarGraph
from repro.planar.kasteleyn import log_count_perfect_matchings
from repro.pram.tracker import Tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator

Matching = Tuple[FrozenSet, ...]


def _canonical_matching(edges: List[Tuple]) -> Matching:
    return tuple(sorted((frozenset(edge) for edge in edges), key=lambda e: sorted(map(repr, e))))


def enumerate_perfect_matchings(graph: PlanarGraph) -> List[Matching]:
    """Brute-force enumeration of all perfect matchings (small graphs / tests)."""
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) % 2 == 1:
        return []
    adjacency = {v: set(graph.neighbors(v)) for v in vertices}

    results: List[Matching] = []

    def recurse(remaining: List, partial: List[Tuple]):
        if not remaining:
            results.append(_canonical_matching(partial))
            return
        v = remaining[0]
        rest = remaining[1:]
        for u in adjacency[v]:
            if u in rest:
                next_remaining = [w for w in rest if w != u]
                recurse(next_remaining, partial + [(v, u)])

    recurse(vertices, [])
    return results


def _match_vertex(graph: PlanarGraph, vertex, log_total: float, rng: np.random.Generator,
                  tracker: Tracker) -> Tuple[object, float]:
    """One sequential step: sample the partner of ``vertex`` from its conditional law.

    Returns ``(partner, log_count_of_reduced_graph)``.  The counting-oracle
    queries for all incident edges form one batched adaptive round.
    """
    neighbors = graph.neighbors(vertex)
    if not neighbors:
        raise ValueError(f"vertex {vertex!r} has no neighbors but a perfect matching was requested")
    log_counts = np.full(len(neighbors), -math.inf)
    with tracker.round("match-vertex"):
        tracker.charge(machines=float(len(neighbors)))
        for idx, u in enumerate(neighbors):
            reduced = graph.remove_vertices([vertex, u])
            log_counts[idx] = log_count_perfect_matchings(reduced)
    if np.all(np.isneginf(log_counts)):
        raise RuntimeError("no extension to a perfect matching exists; inconsistent conditioning")
    shift = np.max(log_counts[np.isfinite(log_counts)])
    weights = np.where(np.isfinite(log_counts), np.exp(log_counts - shift), 0.0)
    probs = weights / weights.sum()
    choice = int(rng.choice(len(neighbors), p=probs))
    return neighbors[choice], float(log_counts[choice])


def sample_planar_matching_sequential(graph: PlanarGraph, seed: SeedLike = None, *,
                                      tracker: Optional[Tracker] = None) -> SampleResult:
    """Exact uniform perfect matching via the sequential conditional sampler.

    The result's ``subset`` is a tuple of frozenset edges; the report records
    the ``Θ(n)`` adaptive rounds the sampler needed.
    """
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    report = SamplerReport()
    if graph.n % 2 == 1:
        raise ValueError("graphs with an odd number of vertices have no perfect matching")

    matching: List[FrozenSet] = []
    with use_tracker(trk):
        log_total = log_count_perfect_matchings(graph)
        if log_total == -math.inf:
            raise ValueError("graph has no perfect matching")
        current = graph
        while current.n > 0:
            vertex = sorted(current.vertices(), key=repr)[0]
            partner, _ = _match_vertex(current, vertex, log_total, rng, trk)
            matching.append(frozenset((vertex, partner)))
            current = current.remove_vertices([vertex, partner])
            report.batch_sizes.append(1)
    report.update_from_tracker(trk)
    return SampleResult(subset=_canonical_matching([tuple(e) for e in matching]), report=report)
