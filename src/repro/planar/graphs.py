"""Planar graph wrapper and workload generators.

:class:`PlanarGraph` is a thin immutable-ish wrapper around
:class:`networkx.Graph` that caches the planarity check, exposes the vertex/
edge views the samplers need, and supports vertex deletion (returning a new
graph) and connected-component decomposition — the two operations the
separator recursion of Theorem 11 performs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import SeedLike, as_generator


class PlanarGraph:
    """A planar graph with hashable vertex labels."""

    def __init__(self, graph: nx.Graph, *, check_planarity: bool = True):
        if graph.number_of_selfloops() if hasattr(graph, "number_of_selfloops") else nx.number_of_selfloops(graph):
            raise ValueError("self-loops are not supported")
        self._graph = nx.Graph(graph)
        self._embedding: Optional[nx.PlanarEmbedding] = None
        if check_planarity:
            is_planar, embedding = nx.check_planarity(self._graph)
            if not is_planar:
                raise ValueError("graph is not planar")
            self._embedding = embedding

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def embedding(self) -> nx.PlanarEmbedding:
        if self._embedding is None:
            is_planar, embedding = nx.check_planarity(self._graph)
            if not is_planar:
                raise ValueError("graph is not planar")
            self._embedding = embedding
        return self._embedding

    @property
    def n(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def m(self) -> int:
        return self._graph.number_of_edges()

    def vertices(self) -> List:
        return list(self._graph.nodes())

    def edges(self) -> List[Tuple]:
        return list(self._graph.edges())

    def neighbors(self, vertex) -> List:
        return list(self._graph.neighbors(vertex))

    def has_vertex(self, vertex) -> bool:
        return self._graph.has_node(vertex)

    def degree(self, vertex) -> int:
        return int(self._graph.degree(vertex))

    # ------------------------------------------------------------------ #
    def remove_vertices(self, vertices: Iterable) -> "PlanarGraph":
        """New graph with ``vertices`` (and incident edges) removed."""
        g = self._graph.copy()
        g.remove_nodes_from(list(vertices))
        return PlanarGraph(g, check_planarity=False)

    def subgraph(self, vertices: Iterable) -> "PlanarGraph":
        """Induced subgraph on ``vertices``."""
        return PlanarGraph(self._graph.subgraph(list(vertices)).copy(), check_planarity=False)

    def connected_components(self) -> List["PlanarGraph"]:
        """Induced subgraphs on each connected component."""
        return [self.subgraph(component) for component in nx.connected_components(self._graph)]

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        return nx.is_connected(self._graph)

    def adjacency_index(self) -> Dict:
        """Stable vertex → contiguous index map (sorted by label repr)."""
        return {v: i for i, v in enumerate(sorted(self._graph.nodes(), key=repr))}

    def __repr__(self) -> str:  # pragma: no cover
        return f"PlanarGraph(n={self.n}, m={self.m})"


# ---------------------------------------------------------------------- #
# generators
# ---------------------------------------------------------------------- #
def grid_graph(rows: int, cols: int) -> PlanarGraph:
    """The ``rows x cols`` grid graph (the dimer-model workload).

    It has a perfect matching iff ``rows * cols`` is even.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    g = nx.grid_2d_graph(rows, cols)
    return PlanarGraph(g)


def ladder_graph(length: int) -> PlanarGraph:
    """The ladder graph ``P_length x P_2`` (2 x length grid)."""
    return grid_graph(2, length)


def cycle_graph(length: int) -> PlanarGraph:
    """The cycle ``C_length`` (2 perfect matchings when ``length`` is even)."""
    if length < 3:
        raise ValueError("cycle length must be at least 3")
    return PlanarGraph(nx.cycle_graph(length))


def delaunay_graph(num_points: int, seed: SeedLike = None) -> PlanarGraph:
    """Random planar graph from the Delaunay triangulation of random points."""
    from scipy.spatial import Delaunay

    if num_points < 3:
        raise ValueError("need at least 3 points")
    rng = as_generator(seed)
    points = rng.random((num_points, 2))
    tri = Delaunay(points)
    g = nx.Graph()
    g.add_nodes_from(range(num_points))
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edges_from([(a, b), (b, c), (a, c)])
    return PlanarGraph(g)
