"""Kasteleyn / FKT counting oracle for perfect matchings of planar graphs.

[Kas67]: every planar graph admits a *Pfaffian orientation* — an orientation
of its edges such that every inner face of a planar embedding has an odd
number of edges oriented clockwise.  With such an orientation the number of
perfect matchings equals ``|Pf(A)| = sqrt(det(A))`` where ``A`` is the signed
skew-symmetric adjacency matrix.  Determinants are in ``NC`` [Csa75], so this
is the counting oracle Theorem 11 queries.

The orientation is constructed with the standard FKT procedure:

1. pick a spanning tree of the (connected) graph and orient its edges
   arbitrarily;
2. the non-tree edges are in bijection with the inner faces' independent cycle
   constraints: the face-adjacency graph on non-tree edges is a tree (the dual
   spanning tree); process it leaves-first, orienting each face's last free
   edge so the face has an odd number of edges agreeing with its traversal
   direction.

Counts are returned in log-space (grids beyond ~10x10 have astronomically many
matchings); :func:`count_perfect_matchings` exponentiates and rounds when the
count fits a float.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.planar.graphs import PlanarGraph
from repro.pram.tracker import current_tracker

Edge = Tuple[object, object]


def _canonical(u, v) -> FrozenSet:
    return frozenset((u, v))


def _faces_of_embedding(embedding: nx.PlanarEmbedding) -> List[List[Edge]]:
    """All faces as lists of directed half-edges ``(u, v)`` in traversal order."""
    visited = set()
    faces: List[List[Edge]] = []
    for u, v in embedding.edges():
        for start in ((u, v), (v, u)):
            if start in visited:
                continue
            face_vertices = embedding.traverse_face(*start, mark_half_edges=visited)
            # convert the vertex cycle into directed half-edges
            half_edges = [
                (face_vertices[i], face_vertices[(i + 1) % len(face_vertices)])
                for i in range(len(face_vertices))
            ]
            faces.append(half_edges)
    return faces


def pfaffian_orientation(graph: PlanarGraph) -> Dict[FrozenSet, Edge]:
    """FKT Pfaffian orientation of a connected planar graph.

    Returns a map ``frozenset({u, v}) -> (u, v)`` meaning the edge is oriented
    from ``u`` to ``v``.
    """
    g = graph.graph
    if g.number_of_nodes() == 0 or g.number_of_edges() == 0:
        return {}
    if not graph.is_connected():
        raise ValueError("pfaffian_orientation expects a connected graph")
    embedding = graph.embedding

    # 1. spanning tree, oriented arbitrarily (parent -> child)
    tree_edges = set()
    orientation: Dict[FrozenSet, Edge] = {}
    root = next(iter(g.nodes()))
    parent = {root: None}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in g.neighbors(u):
            if v not in parent:
                parent[v] = u
                tree_edges.add(_canonical(u, v))
                orientation[_canonical(u, v)] = (u, v)
                queue.append(v)

    # 2. faces and the dual tree over non-tree edges
    faces = _faces_of_embedding(embedding)
    if len(faces) <= 1:
        # tree (no cycles): any orientation is Pfaffian
        return orientation

    edge_to_faces: Dict[FrozenSet, List[int]] = {}
    for face_idx, half_edges in enumerate(faces):
        for u, v in half_edges:
            edge_to_faces.setdefault(_canonical(u, v), []).append(face_idx)

    dual = nx.Graph()
    dual.add_nodes_from(range(len(faces)))
    for edge_key, face_list in edge_to_faces.items():
        if edge_key in tree_edges:
            continue
        if len(face_list) != 2:
            raise RuntimeError("non-tree edge does not border exactly two faces")
        dual.add_edge(face_list[0], face_list[1], graph_edge=edge_key)

    # Designate face 0 as the excluded (outer) face; the dual graph restricted
    # to non-tree edges is a spanning tree of the faces.
    excluded = 0
    order = list(nx.bfs_tree(dual, excluded).nodes())
    dual_parent = {excluded: None}
    for node in order:
        for neighbor in dual.neighbors(node):
            if neighbor not in dual_parent:
                dual_parent[neighbor] = node

    # 3. process faces farthest-from-root first, fixing the parent edge last
    for face_idx in reversed(order):
        if face_idx == excluded:
            continue
        parent_face = dual_parent[face_idx]
        free_edge = dual.edges[face_idx, parent_face]["graph_edge"]
        half_edges = faces[face_idx]
        # count already-oriented edges agreeing with the traversal direction
        agree = 0
        free_direction: Optional[Edge] = None
        for u, v in half_edges:
            key = _canonical(u, v)
            if key == free_edge:
                free_direction = (u, v)
                continue
            oriented = orientation.get(key)
            if oriented is None:
                raise RuntimeError("face has more than one unoriented edge during FKT sweep")
            if oriented == (u, v):
                agree += 1
        if free_direction is None:
            raise RuntimeError("free edge not found on its face boundary")
        if agree % 2 == 0:
            orientation[free_edge] = free_direction
        else:
            orientation[free_edge] = (free_direction[1], free_direction[0])
    return orientation


def _log_count_connected(graph: PlanarGraph) -> float:
    """Log of the number of perfect matchings of a connected planar graph."""
    n = graph.n
    if n == 0:
        return 0.0
    if n % 2 == 1:
        return -math.inf
    if graph.m == 0:
        return -math.inf
    orientation = pfaffian_orientation(graph)
    index = graph.adjacency_index()
    A = np.zeros((n, n))
    for edge_key, (u, v) in orientation.items():
        i, j = index[u], index[v]
        A[i, j] = 1.0
        A[j, i] = -1.0
    current_tracker().charge_determinant(n)
    sign, logdet = np.linalg.slogdet(A)
    if sign <= 0 and not math.isfinite(logdet):
        return -math.inf
    if logdet == -math.inf:
        return -math.inf
    # det(A) = Pf(A)^2 >= 0; numerical noise can flip the sign for singular A
    if sign < 0 and logdet > -20:
        raise RuntimeError("skew-symmetric determinant came out negative; orientation bug?")
    return 0.5 * logdet


def log_count_perfect_matchings(graph: PlanarGraph) -> float:
    """``log(#perfect matchings)`` of a planar graph (``-inf`` if none exist).

    Disconnected graphs factor over their components.
    """
    total = 0.0
    for component in graph.connected_components():
        value = _log_count_connected(component)
        if value == -math.inf:
            return -math.inf
        total += value
    return total


def count_perfect_matchings(graph: PlanarGraph) -> float:
    """Number of perfect matchings (rounded; use the log version for big graphs)."""
    log_count = log_count_perfect_matchings(graph)
    if log_count == -math.inf:
        return 0.0
    if log_count > 700:
        raise OverflowError("matching count overflows float; use log_count_perfect_matchings")
    return float(round(math.exp(log_count)))


def matching_edge_marginal(graph: PlanarGraph, u, v) -> float:
    """``P[(u, v) ∈ M]`` for a uniformly random perfect matching ``M``.

    Equals ``#PM(G - {u, v}) / #PM(G)``; both counts are Kasteleyn
    determinants (one batched round of two oracle calls).
    """
    if not graph.graph.has_edge(u, v):
        return 0.0
    log_total = log_count_perfect_matchings(graph)
    if log_total == -math.inf:
        raise ValueError("graph has no perfect matching")
    reduced = graph.remove_vertices([u, v])
    log_reduced = log_count_perfect_matchings(reduced)
    if log_reduced == -math.inf:
        return 0.0
    return float(math.exp(log_reduced - log_total))
