"""Theorem 11: parallel sampling of uniform perfect matchings of planar graphs.

The algorithm (Section 6):

1. find a planar separator ``S`` of size ``O(√n)`` whose removal leaves
   components of size at most ``2n/3``;
2. sequentially match the vertices of ``S`` from their exact conditional edge
   marginals (each step is one adaptive round of batched Kasteleyn counting
   queries) — also removing the partners, which may live in the components;
3. the remaining graph is a disjoint union of (smaller) planar graphs whose
   matchings are conditionally independent; recurse on them **in parallel**.

Depth recursion: ``D(n) = O(√n) + D(2n/3) = O(√n)``; work obeys
``P(n) = 2 P(2n/3) + poly(n) = O(poly(n))`` (proof of Theorem 11).
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.result import SampleResult, SamplerReport
from repro.planar.graphs import PlanarGraph
from repro.planar.kasteleyn import log_count_perfect_matchings
from repro.planar.matching import _canonical_matching, _match_vertex
from repro.planar.separator import bfs_level_separator
from repro.pram.tracker import Tracker, current_tracker, use_tracker
from repro.utils.rng import SeedLike, as_generator, spawn_generators


def _sample_recursive(graph: PlanarGraph, rng: np.random.Generator, report: SamplerReport,
                      *, base_size: int) -> List[FrozenSet]:
    """Recursive separator sampler; runs inside the current tracker context."""
    tracker = current_tracker()
    matching: List[FrozenSet] = []
    current = graph

    if current.n == 0:
        return matching

    if current.n <= base_size:
        # Small base case: match every vertex sequentially (O(base_size) rounds).
        while current.n > 0:
            vertex = sorted(current.vertices(), key=repr)[0]
            partner, _ = _match_vertex(current, vertex, 0.0, rng, tracker)
            matching.append(frozenset((vertex, partner)))
            current = current.remove_vertices([vertex, partner])
        return matching

    separator, _ = bfs_level_separator(current)
    report.extra["max_separator"] = max(report.extra.get("max_separator", 0.0), float(len(separator)))

    # Step 2: match separator vertices sequentially, conditioning as we go.
    for vertex in sorted(separator, key=repr):
        if not current.has_vertex(vertex):
            continue  # already matched as a partner of an earlier separator vertex
        partner, _ = _match_vertex(current, vertex, 0.0, rng, tracker)
        matching.append(frozenset((vertex, partner)))
        current = current.remove_vertices([vertex, partner])

    if current.n == 0:
        return matching

    # Step 3: recurse on the connected components in parallel.
    components = current.connected_components()
    child_rngs = spawn_generators(rng, len(components))
    child_trackers: List[Tracker] = []
    for component, child_rng in zip(components, child_rngs):
        child = tracker.spawn()
        child_trackers.append(child)
        with use_tracker(child):
            matching.extend(_sample_recursive(component, child_rng, report, base_size=base_size))
    tracker.merge_parallel(child_trackers)
    return matching


def sample_planar_matching_parallel(graph: PlanarGraph, seed: SeedLike = None, *,
                                    tracker: Optional[Tracker] = None,
                                    base_size: int = 6) -> SampleResult:
    """Theorem 11: exact uniform perfect matching in ``Õ(√n)`` parallel depth.

    Parameters
    ----------
    graph:
        A planar graph with at least one perfect matching.
    base_size:
        Components of at most this many vertices are finished with the
        sequential sampler (the recursion's base case).
    """
    rng = as_generator(seed)
    trk = tracker if tracker is not None else Tracker()
    report = SamplerReport()
    if graph.n % 2 == 1:
        raise ValueError("graphs with an odd number of vertices have no perfect matching")

    with use_tracker(trk):
        if log_count_perfect_matchings(graph) == -math.inf:
            raise ValueError("graph has no perfect matching")
        edges = _sample_recursive(graph, rng, report, base_size=base_size)

    report.update_from_tracker(trk)
    return SampleResult(subset=_canonical_matching([tuple(e) for e in edges]), report=report)
