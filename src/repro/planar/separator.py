"""Planar separators.

Theorem 11 needs, per recursion level, a vertex set ``S`` of size ``O(√n)``
whose removal leaves connected components of size at most ``2n/3`` [GM87 in
the paper; Lipton–Tarjan classically].  We implement the breadth-first-search
*level separator*: run BFS from an arbitrary vertex and pick the level whose
removal best balances the two sides.  For the bounded-degree, bounded-diameter
workloads of the benchmarks (grid graphs, ladders, Delaunay triangulations)
the chosen level has ``O(√n)`` vertices, which is all the depth-recursion
analysis needs; :func:`separator_quality` reports both size and balance so the
tests and the E8 benchmark can verify the assumption on every instance.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.planar.graphs import PlanarGraph


def _bfs_levels(graph: PlanarGraph, source) -> Dict:
    levels = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.graph.neighbors(u):
            if v not in levels:
                levels[v] = levels[u] + 1
                queue.append(v)
    return levels


def bfs_level_separator(graph: PlanarGraph, *, balance_target: float = 2.0 / 3.0) -> Tuple[List, List[List]]:
    """BFS-level separator of a connected graph.

    Returns ``(separator_vertices, component_vertex_lists)`` where the
    components are those of ``G - separator``.  The level is chosen to
    minimize, lexicographically, (whether the largest side exceeds
    ``balance_target * n``, largest side size, separator size).

    For graphs of two or fewer vertices the separator is the whole vertex set.
    """
    n = graph.n
    if n == 0:
        return [], []
    if not graph.is_connected():
        raise ValueError("bfs_level_separator expects a connected graph")
    vertices = graph.vertices()
    if n <= 2:
        return list(vertices), []

    source = vertices[0]
    levels = _bfs_levels(graph, source)
    max_level = max(levels.values())
    if max_level == 0:
        return list(vertices), []

    by_level: Dict[int, List] = {}
    for vertex, level in levels.items():
        by_level.setdefault(level, []).append(vertex)

    counts = [len(by_level.get(level, [])) for level in range(max_level + 1)]
    prefix = [0]
    for c in counts:
        prefix.append(prefix[-1] + c)

    best = None
    best_key = None
    for level in range(max_level + 1):
        below = prefix[level]
        above = n - prefix[level + 1]
        separator_size = counts[level]
        largest = max(below, above)
        unbalanced = 1 if largest > balance_target * n else 0
        key = (unbalanced, largest, separator_size)
        if best_key is None or key < best_key:
            best_key = key
            best = level
    separator = list(by_level[best])

    remaining = graph.remove_vertices(separator)
    components = [sorted(component, key=repr) for component in nx.connected_components(remaining.graph)]
    return separator, components


def separator_quality(graph: PlanarGraph, separator: Sequence, components: Sequence[Sequence]) -> Dict[str, float]:
    """Diagnostics of a separator: size, normalized size, and balance."""
    n = max(graph.n, 1)
    largest = max((len(c) for c in components), default=0)
    return {
        "n": float(graph.n),
        "separator_size": float(len(separator)),
        "separator_over_sqrt_n": float(len(separator)) / max(n ** 0.5, 1.0),
        "largest_component": float(largest),
        "balance": float(largest) / n,
    }
