"""Planar perfect-matching substrate (Section 6 / Theorem 11).

* :mod:`repro.planar.graphs` — planar graph wrapper and generators (grids,
  ladders, Delaunay triangulations).
* :mod:`repro.planar.kasteleyn` — the FKT / Kasteleyn Pfaffian-orientation
  counting oracle: the number of perfect matchings of a planar graph as a
  determinant [Kas67], computable in ``NC`` [Csa75].
* :mod:`repro.planar.separator` — planar separators of size ``O(√n)`` whose
  removal leaves balanced components.
* :mod:`repro.planar.matching` — sequential conditional matching sampler
  (``Θ(n)`` depth baseline).
* :mod:`repro.planar.parallel_matching` — the Theorem 11 sampler: match the
  separator sequentially, recurse on the components in parallel, total depth
  ``Õ(√n)``.
"""

from repro.planar.graphs import (
    PlanarGraph,
    grid_graph,
    ladder_graph,
    cycle_graph,
    delaunay_graph,
)
from repro.planar.kasteleyn import (
    pfaffian_orientation,
    count_perfect_matchings,
    log_count_perfect_matchings,
    matching_edge_marginal,
)
from repro.planar.separator import bfs_level_separator, separator_quality
from repro.planar.matching import sample_planar_matching_sequential, enumerate_perfect_matchings
from repro.planar.parallel_matching import sample_planar_matching_parallel

__all__ = [
    "PlanarGraph",
    "grid_graph",
    "ladder_graph",
    "cycle_graph",
    "delaunay_graph",
    "pfaffian_orientation",
    "count_perfect_matchings",
    "log_count_perfect_matchings",
    "matching_edge_marginal",
    "bfs_level_separator",
    "separator_quality",
    "sample_planar_matching_sequential",
    "enumerate_perfect_matchings",
    "sample_planar_matching_parallel",
]
