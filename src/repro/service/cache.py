"""Factorization cache: memoized per-kernel preprocessing artifacts.

Every sampler in this repository front-loads the same expensive linear
algebra before any randomness happens: the eigendecomposition of the
symmetrized ensemble, a rank-revealing PSD factor and its Gram companion, the
ESP table of the spectrum, characteristic-polynomial minor sums
(nonsymmetric kernels) and the interpolation-oracle normalizer (partition
kernels).  Serving traffic against a registered kernel should pay those costs
once, not per request — the amortization regime of Barthelmé–Tremblay–Amblard
and of the preprocess-then-sample line of work in PAPERS.md.

:class:`KernelFactorization` computes each artifact lazily **with the exact
routine the corresponding sampler would run** (``np.linalg.eigvalsh`` of the
symmetrized ensemble for :class:`~repro.dpp.symmetric.SymmetricKDPP`,
:func:`~repro.dpp.spectral.symmetrized_eigh` for the HKPV samplers,
:func:`~repro.linalg.batch.psd_factor`, ...), so threading a cached artifact
back into a sampler yields bit-identical fixed-seed samples.  Note that
``eigvalsh`` and ``eigh`` may disagree in the last ulp (different LAPACK
drivers), which is why the cache stores *both* spectra rather than deriving
one from the other.

:class:`FactorizationCache` is the content-addressed store: artifacts are
keyed by a SHA-256 fingerprint of the matrix bytes, entries are evicted LRU
once ``capacity`` is exceeded, expire after an optional per-entry idle
``ttl`` (swept lazily on access), and :meth:`~FactorizationCache.invalidate`
drops an entry explicitly (e.g. after a workload retrains its kernel).  All
operations are thread-safe; concurrent sessions serving the same kernel share
one entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.dpp.kernels import ensemble_to_kernel
from repro.dpp.likelihood import all_principal_minor_sums
from repro.dpp.spectral import symmetrized_eigh
from repro.linalg.batch import psd_factor
from repro.linalg.esp import elementary_symmetric_polynomials
from repro.utils.fingerprint import array_fingerprint

__all__ = ["CacheStats", "KernelFactorization", "FactorizationCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`FactorizationCache`.

    ``evictions`` counts entries dropped by the LRU *entry-count* bound;
    ``size_evictions`` counts entries dropped by the *byte-budget* bound
    (``max_bytes``); ``expired`` counts entries reclaimed by the idle ``ttl``
    — the three are tracked separately so operators can tell which limit is
    actually binding.

    ``update_patched`` / ``update_recomputed`` count :meth:`~FactorizationCache.adopt`
    decisions — incremental kernel updates whose artifacts were patched from
    the predecessor entry versus rebuilt cold (forced, break-even fallback,
    or predecessor already evicted).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size_evictions: int = 0
    expired: int = 0
    invalidations: int = 0
    update_patched: int = 0
    update_recomputed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size_evictions": self.size_evictions,
                "expired": self.expired, "invalidations": self.invalidations,
                "update_patched": self.update_patched,
                "update_recomputed": self.update_recomputed}


class KernelFactorization:
    """Lazy, memoized preprocessing artifacts for one ensemble matrix.

    Artifacts materialize on first access and are retained for the lifetime
    of the object (the enclosing cache controls the object's lifetime).  All
    getters are thread-safe, and each artifact's computation is
    **single-flight**: when several sessions miss the same key concurrently,
    one thread computes while the rest wait for its result — and threads
    asking for *different* artifacts of the same kernel proceed in parallel
    instead of serializing behind one coarse lock (which is what the old
    hold-the-lock-while-computing implementation did, and what made two
    sessions warming one kernel pay the eigendecomposition twice... or wait
    on each other's unrelated ESP tables).
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_values", "_inflight", "_stats")}

    #: per-artifact counter slots (see :meth:`artifact_stats`)
    _STAT_FIELDS = ("hits", "misses", "patched", "seeded")

    def __init__(self, matrix: np.ndarray, fingerprint: Optional[str] = None):
        a = np.asarray(matrix, dtype=float)
        if a.flags.writeable:
            # Defensive copy: the fingerprint is computed from today's content,
            # so a caller mutating its matrix in place must not be able to
            # corrupt lazily materialized artifacts under the old key.
            a = a.copy()
            a.flags.writeable = False
        self.matrix = a
        self.fingerprint = fingerprint if fingerprint is not None else array_fingerprint(self.matrix)
        self.n = self.matrix.shape[0]
        self._lock = threading.Lock()
        self._values: Dict[object, object] = {}
        self._inflight: Dict[object, threading.Event] = {}
        #: per-artifact-kind [hits, misses, patched, seeded] counters
        self._stats: Dict[str, List[int]] = {}

    def _bump_locked(self, key: object, event: str) -> None:
        name = key if isinstance(key, str) else str(key[0])
        self._stats.setdefault(name, [0, 0, 0, 0])[
            self._STAT_FIELDS.index(event)] += 1

    def _get(self, key: object, compute: Callable[[], object]):
        while True:
            with self._lock:
                if key in self._values:
                    self._bump_locked(key, "hits")
                    return self._values[key]
                waiter = self._inflight.get(key)
                if waiter is None:
                    waiter = threading.Event()
                    self._inflight[key] = waiter
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    value = compute()
                except BaseException:
                    with self._lock:
                        del self._inflight[key]
                    waiter.set()  # wake followers; one of them retries compute()
                    raise
                with self._lock:
                    self._values[key] = value
                    self._bump_locked(key, "misses")
                    del self._inflight[key]
                waiter.set()
                return value
            waiter.wait()
            # leader finished (or failed); loop re-checks the memo

    # ------------------------------------------------------------------ #
    # symmetric-kernel artifacts
    # ------------------------------------------------------------------ #
    @property
    def eigenvalues(self) -> np.ndarray:
        """Clipped ``eigvalsh`` spectrum of ``0.5 (L + Lᵀ)`` — the exact
        array :attr:`repro.dpp.symmetric.SymmetricKDPP.eigenvalues` computes."""
        return self._get("eigenvalues", lambda: np.clip(
            np.linalg.eigvalsh(0.5 * (self.matrix + self.matrix.T)), 0.0, None))

    @property
    def eigh_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        """``symmetrized_eigh(L)`` — the spectral samplers' preprocessing."""
        return self._get("eigh", lambda: symmetrized_eigh(self.matrix))

    @property
    def esp_table(self) -> np.ndarray:
        """Full ESP table ``e_0..e_n`` of :attr:`eigenvalues`."""
        return self._get("esp", lambda: elementary_symmetric_polynomials(self.eigenvalues))

    @property
    def size_distribution(self) -> np.ndarray:
        """``P[|S| = t]`` of the symmetric DPP — matches
        :func:`repro.dpp.elementary.dpp_size_distribution` bitwise."""
        def compute():
            esp = self.esp_table
            total = esp.sum()
            if total <= 0:
                raise ValueError("ensemble matrix defines a zero measure")
            return esp / total
        return self._get("size_distribution", compute)

    @property
    def factor(self) -> np.ndarray:
        """Rank-revealing ``B`` with ``L ≈ B Bᵀ`` (:func:`psd_factor`)."""
        return self._get("factor", lambda: psd_factor(self.matrix))

    @property
    def factor_gram(self) -> np.ndarray:
        """``BᵀB`` companion of :attr:`factor`."""
        return self._get("factor_gram", lambda: self.factor.T @ self.factor)

    @property
    def kernel(self) -> np.ndarray:
        """Marginal kernel ``K = L (I + L)^{-1}``."""
        return self._get("kernel", lambda: ensemble_to_kernel(self.matrix))

    @property
    def det_identity_plus(self) -> float:
        """``det(I + L)`` — the unconstrained DPP's partition function."""
        return self._get("det_identity_plus", lambda: float(
            np.linalg.det(np.eye(self.n) + self.matrix)))

    # ------------------------------------------------------------------ #
    # nonsymmetric-kernel artifacts
    # ------------------------------------------------------------------ #
    @property
    def minor_sums(self) -> np.ndarray:
        """``[Σ_{|S|=j} det(L_S)]_{j=0..n}`` via the characteristic polynomial."""
        return self._get("minor_sums", lambda: all_principal_minor_sums(self.matrix))

    def minor_sum(self, order: int) -> float:
        """``Σ_{|S|=order} det(L_S)`` — matches
        :func:`repro.dpp.likelihood.sum_principal_minors` value for value."""
        if order < 0 or order > self.n:
            return 0.0
        if order == 0:
            return 1.0
        return float(self.minor_sums[order])

    @property
    def nonsym_size_distribution(self) -> np.ndarray:
        """Cardinality distribution of the nonsymmetric DPP — matches
        :meth:`repro.dpp.nonsymmetric.NonsymmetricDPP.cardinality_distribution`."""
        def compute():
            sums = np.clip(self.minor_sums, 0.0, None)
            total = sums.sum()
            if total <= 0:
                raise ValueError("ensemble matrix defines a zero measure")
            return sums / total
        return self._get("nonsym_size_distribution", compute)

    # ------------------------------------------------------------------ #
    # low-rank (factor) artifacts — ``matrix`` is the ``n x k`` factor ``B``
    # ------------------------------------------------------------------ #
    @property
    def lowrank_gram(self) -> np.ndarray:
        """Dual ``k x k`` Gram ``BᵀB`` — the exact array
        :attr:`repro.distributions.lowrank.LowRankDPP.gram` computes."""
        return self._get("lowrank_gram", lambda: self.matrix.T @ self.matrix)

    @property
    def lowrank_dual(self) -> Tuple[np.ndarray, np.ndarray]:
        """Clipped ``eigh`` pair of the symmetrized dual Gram — matches the
        low-rank distributions' ``_compute_dual`` numerics bitwise."""
        def compute():
            gram = self.lowrank_gram
            eigenvalues, vectors = np.linalg.eigh(0.5 * (gram + gram.T))
            return np.clip(eigenvalues, 0.0, None), vectors
        return self._get("lowrank_dual", compute)

    @property
    def lowrank_whitened(self) -> Tuple[np.ndarray, np.ndarray]:
        """Whitened ``(λ_kept, U)`` intermediate-sampling basis.

        Computed from :attr:`lowrank_dual` via
        :func:`repro.dpp.intermediate.lowrank_intermediate_basis` — identical
        to the cold path's whitening (which runs the same Gram + clipped
        ``eigh``), so cached serving replays cold-path samples bitwise.
        """
        from repro.dpp.intermediate import lowrank_intermediate_basis

        return self._get("lowrank_whitened", lambda: lowrank_intermediate_basis(
            self.matrix, dual=self.lowrank_dual))

    @property
    def lowrank_size_distribution(self) -> np.ndarray:
        """``P[|S| = t]`` of the low-rank DPP — matches
        :meth:`repro.distributions.lowrank.LowRankDPP.cardinality_distribution`."""
        def compute():
            from repro.linalg.esp import elementary_symmetric_polynomials as esp_table

            n, k = self.matrix.shape
            esp = esp_table(self.lowrank_dual[0], max_order=min(k, n))
            weights = np.zeros(n + 1, dtype=float)
            weights[:esp.size] = np.clip(esp, 0.0, None)
            total = weights.sum()
            if total <= 0:
                raise ValueError("low-rank ensemble defines a zero measure")
            return weights / total
        return self._get("lowrank_size_distribution", compute)

    # ------------------------------------------------------------------ #
    # partition-kernel artifacts
    # ------------------------------------------------------------------ #
    def partition_normalizer(self, parts: Sequence[Sequence[int]],
                             counts: Sequence[int]) -> float:
        """Interpolation-oracle normalizer of the Partition-DPP (memoized per
        ``(parts, counts)``; the interpolation grid evaluation is the
        dominant preprocessing cost of the partition sampler)."""
        from repro.dpp.partition import PartitionDPP  # deferred: dpp -> service has no cycle, keep it that way

        parts_key = tuple(tuple(sorted(int(i) for i in part)) for part in parts)
        counts_key = tuple(int(c) for c in counts)

        def compute():
            part_of = np.empty(self.n, dtype=int)
            for idx, part in enumerate(parts_key):
                for element in part:
                    part_of[element] = idx
            part_sizes = [len(p) for p in parts_key]
            return PartitionDPP._constrained_count(self.matrix, part_of, part_sizes, counts_key)

        return self._get(("partition_z", parts_key, counts_key), compute)

    # ------------------------------------------------------------------ #
    def warm(self, kind: str = "symmetric",
             parts: Optional[Sequence[Sequence[int]]] = None,
             counts: Optional[Sequence[int]] = None) -> "KernelFactorization":
        """Eagerly materialize every artifact the ``kind``'s samplers use.

        The cache is lazy by default — each artifact computes on first
        access, i.e. during the first draw that needs it.  Warm-up moves
        that cost to registration time (``KernelRegistry.register(...,
        warm=True)`` / :meth:`SamplerSession.warm`), so a serving process
        can pay preprocessing before taking traffic instead of inside the
        first request's latency.  Values are identical either way — warm-up
        only calls the same lazy getters.
        """
        if kind == "symmetric":
            self.eigh_pair
            self.eigenvalues
            self.esp_table
            self.size_distribution
            self.factor
            self.factor_gram
            self.kernel
            self.det_identity_plus
        elif kind == "nonsymmetric":
            self.kernel
            self.det_identity_plus
            self.minor_sums
            self.nonsym_size_distribution
        elif kind == "lowrank":
            self.lowrank_gram
            self.lowrank_dual
            self.lowrank_whitened
            self.lowrank_size_distribution
        elif kind == "partition":
            if parts is None or counts is None:
                raise ValueError("warming a partition kernel requires parts= and counts=")
            self.partition_normalizer(parts, counts)
        else:
            raise ValueError(f"unknown kernel kind {kind!r}")
        return self

    #: worker write-back array names accepted by :meth:`seed`, mapped to the
    #: memo keys the lazy getters store under.  Only artifacts whose worker
    #: routine is bit-identical to the lazy getter's routine are listed —
    #: seeding anything else could silently change warm-path samples.
    SEEDABLE_ARTIFACTS = {
        "eigenvalues": "eigenvalues",
        "factor": "factor",
        "factor_gram": "factor_gram",
        "kernel": "kernel",
        # low-rank distributions ship back the worker-computed dual Gram of
        # their factor (worker: B.T @ B — byte-identical to lowrank_gram)
        "gram": "lowrank_gram",
    }

    def seed(self, name: str, value: np.ndarray) -> bool:
        """Install a worker-materialized artifact under its memo key.

        The process backend's artifact write-back
        (:class:`~repro.engine.backends.ProcessPoolBackend` with an
        ``artifact_cache``) calls this with arrays workers computed with the
        *identical* routines the lazy getters run (the
        :meth:`~repro.distributions.base.SubsetDistribution.worker_payload`
        contract guarantees value equality), so warming through write-back
        can never change a sample.  Unknown names and already-materialized
        keys are ignored; returns ``True`` only when the value was stored.
        """
        key = self.SEEDABLE_ARTIFACTS.get(name)
        if key is None:
            return False
        array = np.asarray(value, dtype=float)
        if array.flags.writeable:
            array = array.copy()
            array.flags.writeable = False
        with self._lock:
            if key in self._values:
                return False
            self._values[key] = array
            self._bump_locked(key, "seeded")
            return True

    # ------------------------------------------------------------------ #
    # incremental updates (streaming kernels)
    # ------------------------------------------------------------------ #
    def apply_update(self, update, *, matrix: np.ndarray, fingerprint: str,
                     kind: str) -> "KernelFactorization":
        """A factorization of the mutated kernel, artifacts patched from here.

        ``matrix`` must be the mutated content (``update.apply`` of this
        entry's matrix) and ``fingerprint`` its chain fingerprint.  Every
        artifact *materialized in this entry* is carried over incrementally —
        secular eigen-update, Sherman–Morrison kernel patch, determinant
        lemma, ESP rebuild from the patched spectrum (all ``O(n²)``), or for
        ``lowrank`` entries an exact re-derivation of the ``k``-sized
        artifacts from the patched factor (``O(n·k²)``) — never a fresh
        ``O(n³)`` factorization.  Artifacts this entry had not materialized
        stay lazy in the result.  ``self`` is not modified, so in-flight
        draws keep consuming the predecessor entry untouched.
        """
        from repro.linalg.updates import (factor_from_eigh, rank_one_eigh_update,
                                          rank_one_kernel_update)

        new = KernelFactorization(matrix, fingerprint=fingerprint)
        with self._lock:
            sources = dict(self._values)

        if kind == "lowrank":
            # the patched factor IS the new matrix; the k-sized artifacts are
            # recomputed through the very same lazy getters a cold entry runs,
            # so they are bitwise identical to a cold registration
            for key in ("lowrank_gram", "lowrank_dual", "lowrank_whitened",
                        "lowrank_size_distribution"):
                if key in sources:
                    getattr(new, key)
            return new

        terms = ()
        if update.op == "rank_one" and kind == "symmetric":
            terms = update.rank_one_terms(kind)

        patched: Dict[object, object] = {}
        if kind == "symmetric" and "eigh" in sources:
            lam, vec = sources["eigh"]
            for z, rho in terms:
                lam, vec = rank_one_eigh_update(lam, vec, z, rho)
            floor = float(lam.min(initial=0.0))
            if floor < -1e-8 * max(1.0, float(np.abs(lam).max(initial=0.0))):
                raise ValueError(
                    "rank-1 update drives the ensemble indefinite "
                    f"(min eigenvalue {floor:.3e}); mutated kernel is not a DPP")
            lam = np.clip(lam, 0.0, None)
            patched["eigh"] = (self._freeze(lam), self._freeze(vec))
            if "eigenvalues" in sources:
                # cold entries use eigvalsh here (last-ulp different driver);
                # patched entries derive both spectra from the one patched pair
                patched["eigenvalues"] = self._freeze(lam)
            if "esp" in sources or "size_distribution" in sources:
                esp = elementary_symmetric_polynomials(lam)
                if "esp" in sources:
                    patched["esp"] = self._freeze(esp)
                if "size_distribution" in sources:
                    total = esp.sum()
                    if total <= 0:
                        raise ValueError("ensemble matrix defines a zero measure")
                    patched["size_distribution"] = self._freeze(esp / total)
            if "factor" in sources or "factor_gram" in sources:
                factor = factor_from_eigh(lam, vec)
                if "factor" in sources:
                    patched["factor"] = self._freeze(factor)
                if "factor_gram" in sources:
                    patched["factor_gram"] = self._freeze(factor.T @ factor)

        if "kernel" in sources and update.op == "rank_one":
            kernel = sources["kernel"]
            ratio = 1.0
            if kind == "symmetric":
                for z, rho in terms:
                    kernel, step = rank_one_kernel_update(kernel, z, weight=rho)
                    ratio *= step
            else:
                kernel, step = rank_one_kernel_update(
                    kernel, update.u, update.u if update.v is None else update.v,
                    update.weight)
                ratio = step
            patched["kernel"] = self._freeze(kernel)
            if "det_identity_plus" in sources:
                patched["det_identity_plus"] = float(sources["det_identity_plus"]) * ratio
        # charpoly memos (minor_sums, nonsym_size_distribution) have no cheap
        # incremental form — they fall back to lazy recompute on the new entry

        new._install_patched(patched)
        return new

    @staticmethod
    def _freeze(value: np.ndarray) -> np.ndarray:
        out = np.ascontiguousarray(np.asarray(value, dtype=float))
        if out.base is not None or not out.flags.owndata:
            out = out.copy()
        if out.flags.writeable:
            out.flags.writeable = False
        return out

    def _install_patched(self, values: Dict[object, object]) -> None:
        with self._lock:
            for key, value in values.items():
                if key not in self._values:
                    self._values[key] = value
                    self._bump_locked(key, "patched")

    def artifact_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-artifact-kind counters: hits/misses/patched/seeded.

        ``patched`` counts artifacts installed by :meth:`apply_update`
        (carried over incrementally), ``seeded`` counts worker write-backs,
        ``misses`` counts genuine cold computations — the breakdown that
        makes update-patched vs recomputed artifacts distinguishable in
        dashboards (surfaced through
        :meth:`FactorizationCache.cache_info`).
        """
        with self._lock:
            return {name: dict(zip(self._STAT_FIELDS, counts))
                    for name, counts in sorted(self._stats.items())}

    @property
    def nbytes(self) -> int:
        """Bytes held by materialized artifacts (excluding the matrix itself)."""
        with self._lock:
            total = 0
            for value in self._values.values():
                items = value if isinstance(value, tuple) else (value,)
                for item in items:
                    if isinstance(item, np.ndarray):
                        total += item.nbytes
            return total

    @property
    def materialized(self) -> List[str]:
        """Names of artifacts computed so far (diagnostics)."""
        with self._lock:
            return [str(k) for k in self._values]


class FactorizationCache:
    """Content-addressed LRU cache of :class:`KernelFactorization` objects.

    ``capacity`` bounds the number of cached kernels (LRU eviction);
    ``capacity=0`` disables storage entirely — every lookup returns a fresh
    factorization, which is the "cache off" mode used to verify that caching
    never changes samples.  ``max_bytes`` additionally bounds the
    *approximate* bytes of materialized artifacts (summed ndarray
    ``nbytes``): because artifacts materialize lazily, the budget is
    enforced at every lookup rather than at write time — least-recently-used
    entries are dropped until the rest fit, always keeping at least the
    entry being returned.  ``ttl`` adds idle expiry: an entry untouched for
    ``ttl`` seconds is reclaimed by a lazy sweep running inside ordinary
    cache operations (no background thread), with per-entry overrides via
    ``factorization(..., ttl=...)`` — this is what keeps a long-running shard
    node serving churning kernels from pinning stale eigendecompositions
    until LRU pressure happens to reach them.  Entry-count, byte-budget and
    TTL reclamations are counted separately (see :class:`CacheStats` /
    :meth:`cache_info`).
    """

    #: sentinel distinguishing "no per-entry ttl given" from an explicit None
    _TTL_UNSET = object()

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_entries", "_sizes", "_total_bytes", "_ttls", "_touched")}

    def __init__(self, capacity: int = 32, *, max_bytes: Optional[int] = None,
                 ttl: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 0:
            raise ValueError(f"capacity must be nonnegative, got {capacity}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be nonnegative, got {max_bytes}")
        if ttl is not None and ttl < 0:
            raise ValueError(f"ttl must be nonnegative, got {ttl}")
        self.capacity = int(capacity)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self.ttl = float(ttl) if ttl is not None else None
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, KernelFactorization]" = OrderedDict()
        #: running artifact-byte total: one entry's nbytes is re-read per
        #: lookup (the touched entry is the only one that can have grown),
        #: so byte-budget enforcement never rescans the whole cache
        self._sizes: Dict[str, int] = {}
        self._total_bytes = 0
        #: per-entry idle lifetime (defaults to ``self.ttl``) + last touch
        self._ttls: Dict[str, Optional[float]] = {}
        self._touched: Dict[str, float] = {}
        self.stats = CacheStats()
        # weakly tracked by the obs collector, which re-exports these
        # counters at snapshot time — no per-operation metric writes here
        obs.register_cache(self)

    # ------------------------------------------------------------------ #
    def factorization(self, matrix: np.ndarray, *,
                      fingerprint: Optional[str] = None,
                      ttl: object = _TTL_UNSET) -> KernelFactorization:
        """Get-or-create the factorization for ``matrix`` (LRU touch).

        ``ttl`` overrides the cache-level idle lifetime for this entry
        (``None`` disables expiry for it); passing it on a hit re-arms the
        entry with the new lifetime.
        """
        key = fingerprint if fingerprint is not None else array_fingerprint(
            np.asarray(matrix, dtype=float))
        with self._lock:
            self._sweep_locked()
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                self._touch_locked(key, ttl)
                self._note_size_locked(key, entry)
                self._enforce_byte_budget_locked()
                return entry
            self.stats.misses += 1
            entry = KernelFactorization(matrix, fingerprint=key)
            if self.capacity > 0:
                self._entries[key] = entry
                self._touch_locked(key, ttl)
                self._note_size_locked(key, entry)
                while len(self._entries) > self.capacity:
                    self._drop_lru_locked()
                    self.stats.evictions += 1
                self._enforce_byte_budget_locked()
            return entry

    # ------------------------------------------------------------------ #
    def adopt(self, source_fingerprint: str, update, *, matrix: np.ndarray,
              fingerprint: str, kind: str, patch: bool = True,
              ttl: object = _TTL_UNSET) -> Tuple[KernelFactorization, str]:
        """Entry for an incrementally updated kernel; returns ``(entry, decision)``.

        When ``patch`` is true and the predecessor
        (``source_fingerprint``) is still cached, its materialized artifacts
        are carried over via :meth:`KernelFactorization.apply_update`
        (decision ``"patched"``); otherwise a cold lazy entry is built
        (``"recomputed"``).  The predecessor entry is deliberately **not**
        invalidated — in-flight draws against the old epoch keep their warm
        artifacts, and LRU/TTL pressure reclaims it naturally.  The new
        entry is inserted with ordinary LRU/byte-budget bookkeeping; patch
        work runs outside the cache lock.
        """
        with self._lock:
            self._sweep_locked()
            existing = self._entries.get(fingerprint)
            if existing is not None:
                self.stats.hits += 1
                self._entries.move_to_end(fingerprint)
                self._touch_locked(fingerprint, ttl)
                self._note_size_locked(fingerprint, existing)
                self._enforce_byte_budget_locked()
                return existing, "hit"
            source = self._entries.get(source_fingerprint) if patch else None
        if source is not None:
            entry = source.apply_update(update, matrix=matrix,
                                        fingerprint=fingerprint, kind=kind)
            decision = "patched"
        else:
            entry = KernelFactorization(matrix, fingerprint=fingerprint)
            decision = "recomputed"
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                return existing, "hit"  # racing adopt of the same update won
            if decision == "patched":
                self.stats.update_patched += 1
            else:
                self.stats.update_recomputed += 1
            if self.capacity > 0:
                self._entries[fingerprint] = entry
                self._touch_locked(fingerprint, ttl)
                self._note_size_locked(fingerprint, entry)
                while len(self._entries) > self.capacity:
                    self._drop_lru_locked()
                    self.stats.evictions += 1
                self._enforce_byte_budget_locked()
        return entry, decision

    # ------------------------------------------------------------------ #
    # idle-TTL expiry
    # ------------------------------------------------------------------ #
    def _touch_locked(self, key: str, ttl: object = _TTL_UNSET) -> None:
        self._touched[key] = self._clock()
        if ttl is not self._TTL_UNSET:
            self._ttls[key] = float(ttl) if ttl is not None else None  # type: ignore[arg-type]
        elif key not in self._ttls:
            self._ttls[key] = self.ttl

    def sweep(self) -> int:
        """Drop entries idle past their ttl; returns how many were reclaimed.

        Sweeps also run lazily inside :meth:`factorization` and
        :meth:`cache_info` — this public form exists for explicit maintenance
        ticks in long-running serving processes (shard nodes call it from
        their stats path).
        """
        with self._lock:
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        if not self._entries:
            return 0
        now = self._clock()
        expired = [key for key in self._entries
                   if self._ttls.get(key) is not None
                   and now - self._touched.get(key, now) >= self._ttls[key]]
        for key in expired:
            del self._entries[key]
            self._forget_locked(key)
            self.stats.expired += 1
        return len(expired)

    def _forget_locked(self, key: str) -> None:
        self._total_bytes -= self._sizes.pop(key, 0)
        self._ttls.pop(key, None)
        self._touched.pop(key, None)

    def _note_size_locked(self, key: str, entry: KernelFactorization) -> None:
        """Refresh the running byte total with the touched entry's size."""
        if self.max_bytes is None:
            return
        nbytes = entry.nbytes
        self._total_bytes += nbytes - self._sizes.get(key, 0)
        self._sizes[key] = nbytes

    def _drop_lru_locked(self) -> str:
        key, _ = self._entries.popitem(last=False)
        self._forget_locked(key)
        return key

    def _enforce_byte_budget_locked(self) -> None:
        """Evict LRU entries until materialized artifacts fit ``max_bytes``.

        The most-recently-used entry always survives — a single kernel whose
        artifacts exceed the whole budget still has to serve its session;
        the budget then simply prevents a *second* kernel from being
        retained alongside it.  Thanks to the running total this is O(1)
        per lookup plus O(1) per actual eviction — no full-cache rescans on
        the serving hot path.
        """
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes and len(self._entries) > 1:
            self._drop_lru_locked()
            self.stats.size_evictions += 1

    def cache_info(self) -> Dict[str, object]:
        """One-call diagnostic snapshot: bounds, occupancy, and counters.

        ``"artifacts"`` breaks the counters down per artifact kind
        (``eigh``, ``factor``, ``lowrank_gram``, ...) with
        hits/misses/patched/seeded slots aggregated across live entries —
        the view that distinguishes update-patched artifacts from cold
        recomputes in dashboards.
        """
        with self._lock:
            self._sweep_locked()
            entries = list(self._entries.values())
            info: Dict[str, object] = {
                "entries": len(entries),
                "capacity": self.capacity,
                "max_bytes": self.max_bytes,
                "ttl": self.ttl,
                "nbytes": sum(entry.nbytes for entry in entries),
            }
            info.update(self.stats.as_dict())
            artifacts: Dict[str, Dict[str, int]] = {}
            for entry in entries:
                for name, counts in entry.artifact_stats().items():
                    slot = artifacts.setdefault(
                        name, dict.fromkeys(KernelFactorization._STAT_FIELDS, 0))
                    for event, value in counts.items():
                        slot[event] += value
            info["artifacts"] = artifacts
            return info

    def invalidate(self, target: Union[str, np.ndarray]) -> bool:
        """Drop the entry for a fingerprint or matrix; True if one existed."""
        key = target if isinstance(target, str) else array_fingerprint(
            np.asarray(target, dtype=float))
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._forget_locked(key)
                self.stats.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._sizes.clear()
            self._ttls.clear()
            self._touched.clear()
            self._total_bytes = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, target: Union[str, np.ndarray]) -> bool:
        key = target if isinstance(target, str) else array_fingerprint(
            np.asarray(target, dtype=float))
        with self._lock:
            return key in self._entries

    def fingerprints(self) -> List[str]:
        """Cached fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes of materialized artifacts across entries."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(entry.nbytes for entry in entries)
