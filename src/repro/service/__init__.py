"""The serving layer: registry → factorization cache → session → scheduler.

This package turns the repository from "a sampler you call" into "a system
you serve traffic through":

::

    workload                         service layer                    engine
    --------                         -------------                    ------
    register(name, L)  ──▶  KernelRegistry ──▶ FactorizationCache
                                  │                  │  (eigh, PSD factor,
    serve(name/L)      ──▶  SamplerSession ◀─────────┘   ESP tables, ...)
                                  │ sample(k, seed)   warm artifacts threaded
                                  │                   into dpp/* samplers
    submit()/drain()   ──▶  RoundScheduler ──▶ fused OracleBatch ──▶ backend

* :class:`~repro.service.registry.KernelRegistry` — register ensembles once,
  paying validation up front.
* :class:`~repro.service.cache.FactorizationCache` — content-fingerprinted,
  LRU-evicted memo of the expensive per-kernel preprocessing artifacts.
* :class:`~repro.service.session.SamplerSession` — ``repro.serve(L)`` handle
  whose repeated ``sample()`` calls skip preprocessing entirely while staying
  bit-identical to the cold-path samplers at fixed seeds.
* :class:`~repro.service.scheduler.RoundScheduler` — coalesces concurrently
  submitted requests against the same distribution into fused engine rounds,
  with per-request seeded substreams.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.engine import BackendLike
from repro.service.cache import CacheStats, FactorizationCache, KernelFactorization
from repro.service.registry import (
    KERNEL_KINDS,
    KernelRegistry,
    RegisteredKernel,
    kernel_fingerprint,
)
from repro.service.scheduler import RoundScheduler, SampleTicket
from repro.service.session import SamplerSession

__all__ = [
    "KERNEL_KINDS",
    "CacheStats",
    "FactorizationCache",
    "KernelFactorization",
    "KernelRegistry",
    "RegisteredKernel",
    "RoundScheduler",
    "SampleTicket",
    "SamplerSession",
    "default_registry",
    "kernel_fingerprint",
    "serve",
]

#: process-wide registry used by :func:`serve` when none is supplied
_DEFAULT_REGISTRY = KernelRegistry()


def default_registry() -> KernelRegistry:
    """The process-wide registry behind :func:`repro.serve`."""
    return _DEFAULT_REGISTRY


def serve(kernel, *, name: Optional[str] = None,
          kind: Optional[str] = None,
          parts: Optional[Sequence[Sequence[int]]] = None,
          counts: Optional[Sequence[int]] = None,
          registry: Optional[KernelRegistry] = None,
          cache: Optional[FactorizationCache] = None,
          backend: BackendLike = None,
          validate: bool = True) -> SamplerSession:
    """Open a warm :class:`SamplerSession` for a kernel.

    ``kernel`` is the name of an already registered kernel, a raw ensemble
    matrix, or a :class:`~repro.distributions.lowrank.LowRankKernel` — the
    matrix/factor is (idempotently) registered first — under ``name`` when
    given, else under a name derived from its content fingerprint and kind,
    so serving the same kernel twice reuses one registration and one cached
    factorization.  Low-rank kernels register their ``n x k`` factor (kind
    ``"lowrank"``), so every cached artifact stays ``k``-sized and sampling
    runs the sublinear intermediate sampler by default.

    Lifecycle: auto-named registrations are **ephemeral** — the session pins
    the entry while open, and once every session on it is closed the
    registry's ``anonymous_ttl`` reclaims the registration (so a long-running
    process churning through ``serve(matrix)`` kernels no longer accumulates
    them forever).  Close sessions explicitly (``session.close()`` or
    ``with repro.serve(L) as session: ...``); named/explicit registrations
    stay until ``unregister``.

    Examples
    --------
    >>> session = repro.serve(L)                     # doctest: +SKIP
    >>> session.sample(k=5, seed=123).subset         # doctest: +SKIP
    """
    reg = registry if registry is not None else _DEFAULT_REGISTRY
    ephemeral = False
    if isinstance(kernel, str):
        # acquire first: pins an ephemeral entry atomically with the lookup,
        # so a concurrent TTL sweep cannot reap it mid-serve
        entry = reg.acquire(kernel)
        ephemeral = reg.is_ephemeral(kernel)
        try:
            # registration-time arguments are meaningless for an existing
            # entry: reject mismatches instead of silently sampling a
            # different family
            if name is not None or parts is not None or counts is not None:
                raise ValueError(
                    "name=/parts=/counts= apply when registering a matrix; "
                    f"{kernel!r} is already registered"
                )
            if kind is not None and kind != entry.kind:
                raise ValueError(
                    f"kernel {kernel!r} is registered as kind={entry.kind!r}, not {kind!r}"
                )
        except ValueError:
            if ephemeral:
                reg.release(kernel)
            raise
    else:
        from repro.distributions.lowrank import LowRankKernel

        if isinstance(kernel, LowRankKernel):
            if kind not in (None, "lowrank"):
                raise ValueError(
                    f"a LowRankKernel serves as kind='lowrank', not {kind!r}")
            kind = "lowrank"
            matrix = kernel.factor
        else:
            kind = kind if kind is not None else "symmetric"
            matrix = np.asarray(kernel, dtype=float)
        ephemeral = name is None
        if name is None:
            from repro.utils.fingerprint import matrix_fingerprint

            # derive the name from content AND kind/structure so serving the
            # same matrix as e.g. symmetric and nonsymmetric registers two
            # kernels instead of colliding on one auto-generated name
            params = (tuple(tuple(sorted(int(i) for i in part)) for part in parts)
                      if parts is not None else None,
                      tuple(int(c) for c in counts) if counts is not None else None)
            name = f"kernel-{matrix_fingerprint(matrix, kind=kind, params=params)[:12]}"
        # pin=True takes the session reference atomically with registration
        # (a separate acquire could lose to an anonymous_ttl=0 sweep)
        entry = reg.register(name, matrix, kind=kind, parts=parts, counts=counts,
                             validate=validate, ephemeral=ephemeral, pin=ephemeral)
    return SamplerSession(entry, cache if cache is not None else reg.cache,
                          backend=backend, registry=reg if ephemeral else None)
