"""Sampler sessions: warm, cache-backed handles for repeated draws.

``session = repro.serve(L); session.sample(k=5, seed=...)`` is the serving
counterpart of the one-shot module-level samplers: the session pulls the
kernel's :class:`~repro.service.cache.KernelFactorization` from the shared
cache and threads the cached artifacts into the existing samplers
(``dpp/spectral.py`` via the ``eigh=`` argument, ``dpp/symmetric.py`` /
``dpp/nonsymmetric.py`` / ``dpp/partition.py`` via their precomputed-artifact
hooks), so repeated draws skip every per-kernel preprocessing step while
producing **bit-identical fixed-seed samples** — the warm path replays the
cold path's numerics exactly, it just doesn't recompute them.

Two sampling methods are exposed per kernel family:

* ``method="spectral"`` (symmetric kernels; the default there) — the HKPV
  sampler, the fastest wall-clock route for single draws once the
  eigendecomposition is amortized away;
* ``method="parallel"`` — the paper's batched low-depth samplers
  (Theorems 8/9/10), executed through :mod:`repro.engine` and therefore
  fusable across concurrent requests by the
  :class:`~repro.service.scheduler.RoundScheduler`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.batched import BatchedSamplerConfig, batched_sample
from repro.core.entropic import EntropicSamplerConfig, sample_entropic_parallel
from repro.core.result import SampleResult, SamplerReport
from repro.core.symmetric import kdpp_batched_config
from repro.distributions.base import SubsetDistribution
from repro.distributions.lowrank import LowRankDPP, LowRankKDPP, LowRankKernel
from repro.dpp.intermediate import sample_dpp_intermediate, sample_kdpp_intermediate
from repro.dpp.nonsymmetric import NonsymmetricDPP, NonsymmetricKDPP
from repro.dpp.partition import PartitionDPP
from repro.dpp.spectral import sample_dpp_spectral, sample_kdpp_spectral
from repro.dpp.symmetric import SymmetricDPP, SymmetricKDPP
from repro.engine import BackendLike
from repro.pram.tracker import Tracker, use_tracker
from repro.service.cache import FactorizationCache, KernelFactorization
from repro.service.registry import RegisteredKernel
from repro.utils.rng import SeedLike, as_generator

__all__ = ["SamplerSession"]


class SamplerSession:
    """A warm handle for repeated sampling against one registered kernel.

    Sessions are cheap: they hold no heavy state of their own beyond a memo
    of constructed distribution objects (one per requested cardinality), all
    backed by the shared factorization cache.

    Sessions opened on *ephemeral* registrations (``repro.serve(matrix)``
    auto-names) pin the registration while open; :meth:`close` — or leaving
    the session's ``with`` block — releases the pin so the registry's TTL can
    reclaim the entry.  Long-running services should treat sessions as
    scoped handles, not process-lifetime globals.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_entry", "_distributions", "_scheduler", "_closed",
                             "samples_served")}

    def __init__(self, entry: RegisteredKernel, cache: Optional[FactorizationCache] = None, *,
                 backend: BackendLike = None, registry=None,
                 release: Optional[bool] = None):
        self.cache = cache if cache is not None else FactorizationCache()
        self.backend = backend
        self._registry = registry  # non-None => updates route through it
        # release=None keeps the historical contract (registry => unpin on
        # close); KernelRegistry.session() passes it explicitly so pinned
        # (non-ephemeral) sessions can still route updates through the registry.
        self._release = (registry is not None) if release is None else bool(release)
        self._lock = threading.RLock()
        self._entry = entry
        self._distributions: Dict[object, SubsetDistribution] = {}
        self._scheduler = None
        self._closed = False
        self.samples_served = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release this session: drop memos and unpin any ephemeral registration.

        Idempotent; sampling through a closed session raises
        ``RuntimeError``.  The factorization cache is shared and untouched —
        other sessions on the same kernel keep their warm artifacts.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            registry, self._registry = self._registry, None
            release = self._release
            name = self._entry.name
            self._distributions.clear()
            self._scheduler = None
        if registry is not None and release:
            registry.release(name)

    @property
    def closed(self) -> bool:
        # The lock (an RLock — close()/scheduler() may already hold it)
        # makes close() visible to other threads before they start a draw.
        with self._lock:
            return self._closed

    def _check_open(self) -> None:
        with self._lock:
            closed = self._closed
        if closed:
            raise RuntimeError(
                f"session on kernel {self.entry.name!r} is closed"
            )

    def __enter__(self) -> "SamplerSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    @property
    def entry(self) -> RegisteredKernel:
        """The kernel currently served — a consistent snapshot.

        Incremental updates (:meth:`update` / :meth:`append_items` /
        :meth:`delete_items` / :meth:`adopt_entry`) swap this atomically;
        callers needing several coherent reads should snapshot once
        (``entry = session.entry``) instead of re-reading the property.
        """
        with self._lock:
            return self._entry

    @property
    def epoch(self) -> int:
        """How many incremental updates this session's kernel has absorbed."""
        return self.entry.epoch

    def _factorization_for(self, entry: RegisteredKernel) -> KernelFactorization:
        return self.cache.factorization(entry.matrix, fingerprint=entry.fingerprint)

    @property
    def factorization(self) -> KernelFactorization:
        """The kernel's cached (or, on a cold cache, freshly computed) artifacts."""
        return self._factorization_for(self.entry)

    def warm(self) -> "SamplerSession":
        """Precompute every factorization artifact this kernel's samplers use.

        Moves the lazy per-artifact preprocessing (eigendecompositions, PSD
        factors, ESP tables, minor sums, partition normalizers) out of the
        first request's latency; see
        :meth:`~repro.service.cache.KernelFactorization.warm`.  Returns the
        session for chaining: ``repro.serve(L).warm()``.
        """
        self._check_open()
        entry = self.entry
        if self.cache.capacity == 0:
            import warnings

            warnings.warn(
                f"warm() skipped for session on {entry.name!r}: the "
                "factorization cache has capacity=0 (storage disabled), so "
                "warmed artifacts could not be retained",
                RuntimeWarning, stacklevel=2)
            return self
        self._factorization_for(entry).warm(entry.kind, entry.parts, entry.counts)
        return self

    def distribution(self, k: Optional[int] = None) -> SubsetDistribution:
        """The (cached) distribution object serving cardinality ``k``.

        Construction skips re-validation — the registry validated the matrix
        once — and attaches the cached factorization artifacts so the first
        query of every request is already warm.
        """
        entry = self.entry
        return self._distribution_for(entry, k)

    def _distribution_for(self, entry: RegisteredKernel,
                          k: Optional[int]) -> SubsetDistribution:
        if entry.kind == "partition" and k is not None and k == sum(entry.counts):
            k = None  # the partition kernel's one (fixed) cardinality
        # Keyed by the entry *fingerprint* so a racing draw on the old epoch
        # cannot repopulate the memo with a stale distribution after an
        # update cleared it.
        key = (entry.fingerprint, k)
        with self._lock:
            dist = self._distributions.get(key)
            if dist is None:
                dist = self._build_distribution(entry, k)
                self._distributions[key] = dist
            return dist

    def _build_distribution(self, entry: RegisteredKernel,
                            k: Optional[int]) -> SubsetDistribution:
        fact = self._factorization_for(entry)
        dist = self._construct_distribution(entry, fact, k)
        # Planner break-even input: the oracle's cost hints advertise how deep
        # this kernel's update chain is (see OracleCostHint.update_depth).
        dist.update_depth = len(entry.update_log)
        return dist

    def _construct_distribution(self, entry: RegisteredKernel,
                                fact: KernelFactorization,
                                k: Optional[int]) -> SubsetDistribution:
        if entry.kind == "symmetric":
            if k is None:
                return SymmetricDPP(entry.matrix, validate=False).attach_precomputed(
                    kernel=fact.kernel, partition_function=fact.det_identity_plus)
            return SymmetricKDPP(entry.matrix, int(k), validate=False).attach_precomputed(
                eigenvalues=fact.eigenvalues, factor=fact.factor,
                factor_gram=fact.factor_gram)
        if entry.kind == "nonsymmetric":
            if k is None:
                return NonsymmetricDPP(entry.matrix, validate=False).attach_precomputed(
                    kernel=fact.kernel, partition_function=fact.det_identity_plus)
            return NonsymmetricKDPP(entry.matrix, int(k), validate=False,
                                    partition_function=max(fact.minor_sum(int(k)), 0.0))
        if entry.kind == "lowrank":
            # entry.matrix is the (n, k) factor; thread the cached k x k duals
            kernel = LowRankKernel(entry.matrix, validate=False)
            dual_eigenvalues, dual_vectors = fact.lowrank_dual
            if k is None:
                dist = LowRankDPP(kernel, validate=False)
            else:
                dist = LowRankKDPP(kernel, int(k), validate=False)
            return dist.attach_precomputed(gram=fact.lowrank_gram,
                                           dual_eigenvalues=dual_eigenvalues,
                                           dual_vectors=dual_vectors)
        # partition
        if k is not None and k != sum(entry.counts):
            raise ValueError(
                f"partition kernel {entry.name!r} has fixed cardinality {sum(entry.counts)}, "
                f"cannot sample k={k}"
            )
        return PartitionDPP(
            entry.matrix, entry.parts, entry.counts, validate=False,
            partition_function=fact.partition_normalizer(entry.parts, entry.counts))

    # ------------------------------------------------------------------ #
    def sample(self, k: Optional[int] = None, *, seed: SeedLike = None,
               method: Optional[str] = None, backend: BackendLike = None,
               delta: float = 1e-2, oversample: Optional[float] = None,
               config: Optional[Union[BatchedSamplerConfig, EntropicSamplerConfig]] = None,
               tracker: Optional[Tracker] = None) -> SampleResult:
        """Draw one sample, reusing every cached artifact.

        Fixed-seed draws are identical to the corresponding cold-path entry
        point (``sample_kdpp_spectral`` / ``sample_symmetric_kdpp_parallel``
        / ``sample_dpp_intermediate`` / ...): the cache changes wall-clock,
        never the sample.  ``oversample`` is the low-rank intermediate
        sampler's candidate-set β knob (``method="lowrank"`` only).
        """
        self._check_open()
        # One coherent snapshot per draw: a concurrent update() swaps the
        # entry atomically, so every draw samples entirely from one epoch.
        entry = self.entry
        method = self._resolve_method(method, entry)
        # Request-scoped trace: engine rounds executed below become children
        # of this span.  When called through a RoundScheduler ticket the
        # scheduler's request is the root; this nested one records the
        # per-request execution slice without double-counting SLO latency.
        with obs.request("sample", family=entry.kind, kernel=entry.name,
                         method=method, k=-1 if k is None else int(k)):
            if method == "spectral":
                result = self._sample_spectral(entry, k, seed, tracker, backend)
            elif method == "lowrank":
                result = self._sample_lowrank(entry, k, seed, tracker, backend, oversample)
            else:
                result = self._sample_parallel(entry, k, seed, tracker, backend, delta, config)
        if entry.epoch > 0:
            # Only streamed kernels are tagged — cold registrations keep the
            # report schema (and fixed-seed goldens) byte-for-byte unchanged.
            result.report.extra["kernel_epoch"] = float(entry.epoch)
        with self._lock:
            self.samples_served += 1
        return result

    def _resolve_method(self, method: Optional[str],
                        entry: Optional[RegisteredKernel] = None) -> str:
        kind = (entry if entry is not None else self.entry).kind
        if method is None:
            if kind == "symmetric":
                return "spectral"
            return "lowrank" if kind == "lowrank" else "parallel"
        if method not in ("spectral", "parallel", "lowrank"):
            raise ValueError(f"unknown sampling method {method!r}")
        if method == "spectral" and kind != "symmetric":
            raise ValueError(f"method='spectral' requires a symmetric kernel, got kind={kind!r}")
        if method == "lowrank" and kind != "lowrank":
            raise ValueError(
                f"method='lowrank' requires a LowRankKernel registration, got kind={kind!r}")
        return method

    # ------------------------------------------------------------------ #
    def _sample_spectral(self, entry: RegisteredKernel, k: Optional[int],
                         seed: SeedLike, tracker: Optional[Tracker],
                         backend: BackendLike = None) -> SampleResult:
        eigh = self._factorization_for(entry).eigh_pair
        backend = backend if backend is not None else self.backend
        trk = tracker if tracker is not None else Tracker()
        with use_tracker(trk):
            if k is None:
                subset = sample_dpp_spectral(entry.matrix, seed, validate=False,
                                             eigh=eigh, backend=backend)
            else:
                subset = sample_kdpp_spectral(entry.matrix, int(k), seed,
                                              validate=False, eigh=eigh, backend=backend)
        return SampleResult(subset=subset, report=SamplerReport.from_tracker(trk))

    def _sample_lowrank(self, entry: RegisteredKernel, k: Optional[int],
                        seed: SeedLike, tracker: Optional[Tracker],
                        backend: BackendLike,
                        oversample: Optional[float]) -> SampleResult:
        """The sublinear intermediate sampler over the cached whitened basis.

        Exactly the cold-path :func:`repro.dpp.intermediate.sample_dpp_intermediate`
        / :func:`~repro.dpp.intermediate.sample_kdpp_intermediate` draw — the
        cache supplies the one-time ``O(n·k² + k³)`` whitening, never touches
        the per-sample randomness.
        """
        whitened = self._factorization_for(entry).lowrank_whitened
        backend = backend if backend is not None else self.backend
        trk = tracker if tracker is not None else Tracker()
        with use_tracker(trk):
            if k is None:
                subset = sample_dpp_intermediate(
                    entry.matrix, seed, oversample=oversample,
                    whitened=whitened, backend=backend)
            else:
                subset = sample_kdpp_intermediate(
                    entry.matrix, int(k), seed, oversample=oversample,
                    whitened=whitened, backend=backend)
        return SampleResult(subset=subset, report=SamplerReport.from_tracker(trk))

    def _sample_parallel(self, entry: RegisteredKernel, k: Optional[int],
                         seed: SeedLike, tracker: Optional[Tracker],
                         backend: BackendLike, delta: float,
                         config: Optional[Union[BatchedSamplerConfig, EntropicSamplerConfig]]) -> SampleResult:
        backend = backend if backend is not None else self.backend
        if entry.kind == "partition":
            return sample_entropic_parallel(self._distribution_for(entry, k), config, seed,
                                            tracker=tracker, backend=backend)
        if k is None:
            return self._sample_parallel_unconstrained(entry, seed, tracker, backend,
                                                       delta, config)
        if entry.kind == "nonsymmetric":
            return sample_entropic_parallel(self._distribution_for(entry, int(k)), config, seed,
                                            tracker=tracker, backend=backend)
        # symmetric / low-rank k-DPP: same driver construction as
        # sample_symmetric_kdpp_parallel, so warm draws replay the cold
        # path's randomness verbatim (the low-rank distribution answers the
        # identical counting queries in factor space).
        kk = int(k)
        if config is not None:
            if not isinstance(config, BatchedSamplerConfig):
                raise TypeError(
                    "symmetric parallel sampling takes a BatchedSamplerConfig "
                    f"(as sample_symmetric_kdpp_parallel does), got {type(config).__name__}"
                )
            driver = config
        else:
            driver = kdpp_batched_config(kk, delta)
        return batched_sample(self._distribution_for(entry, kk), driver, seed,
                              tracker=tracker, backend=backend)

    def _sample_parallel_unconstrained(self, entry: RegisteredKernel, seed: SeedLike,
                                       tracker: Optional[Tracker],
                                       backend: BackendLike, delta: float,
                                       config: Optional[Union[BatchedSamplerConfig, EntropicSamplerConfig]]) -> SampleResult:
        """Remark 15 with a cached size distribution: draw ``|S|``, then k-DPP."""
        fact = self._factorization_for(entry)
        if entry.kind == "symmetric":
            sizes = fact.size_distribution
        elif entry.kind == "lowrank":
            sizes = fact.lowrank_size_distribution
        else:
            sizes = fact.nonsym_size_distribution
        rng = as_generator(seed)
        trk = tracker if tracker is not None else Tracker()
        with use_tracker(trk):
            with trk.round("cardinality-sampling"):
                k = int(rng.choice(sizes.size, p=sizes))
        if k == 0:
            return SampleResult(subset=(), report=SamplerReport.from_tracker(trk))
        result = self._sample_parallel(entry, k, rng, trk, backend, delta, config)
        result.report.extra["sampled_cardinality"] = float(k)
        return result

    # ------------------------------------------------------------------ #
    # streaming kernels: incremental updates instead of O(n^3) recompute
    # ------------------------------------------------------------------ #
    def update(self, u: np.ndarray, v: Optional[np.ndarray] = None, *,
               weight: float = 1.0, refactor: object = "auto") -> RegisteredKernel:
        """Apply a rank-1 kernel update ``L += weight * u v^T`` in place.

        ``v=None`` means the symmetric special case ``L += weight * u u^T``.
        Cached artifacts are *patched* (secular-equation eigen update,
        Sherman-Morrison kernel update — :mod:`repro.linalg.updates`) rather
        than recomputed, until the planner's break-even policy says a full
        refactorization is cheaper (``refactor="auto"``; pass ``True`` /
        ``False`` to force either path).  Fixed-seed draws after the update
        match cold-registering the mutated matrix.  Returns the new entry.
        """
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.rank_one(u, v, weight=weight),
                                  refactor=refactor)

    def append_items(self, rows: np.ndarray, *,
                     refactor: object = "auto") -> RegisteredKernel:
        """Grow a low-rank kernel's ground set: append factor rows (items)."""
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.append_rows(rows), refactor=refactor)

    def delete_items(self, indices, *, refactor: object = "auto") -> RegisteredKernel:
        """Shrink a low-rank kernel's ground set: delete factor rows (items)."""
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.delete_rows(indices), refactor=refactor)

    def _apply_update(self, update, *, refactor: object) -> RegisteredKernel:
        from repro.service.registry import updated_entry

        with self._lock:
            self._check_open()
            if self._registry is not None:
                # Registry-backed: the registry serializes updates per name
                # and every session on this kernel can adopt the new epoch.
                entry = self._registry.apply_update(self._entry.name, update,
                                                    refactor=refactor)
            else:
                entry, _decision = updated_entry(self._entry, self.cache, update,
                                                 refactor=refactor)
            self._entry = entry
            self._distributions.clear()
            return entry

    def adopt_entry(self, entry: RegisteredKernel) -> bool:
        """Switch this session to an externally updated epoch of its kernel.

        Used by shard nodes whose registry applied a cluster-shipped delta.
        Refuses (returns ``False``) if ``entry`` is *older* than what the
        session already serves — a racing adoption must never roll the
        kernel back.
        """
        with self._lock:
            self._check_open()
            if entry.epoch < self._entry.epoch:
                return False
            self._entry = entry
            self._distributions.clear()
            return True

    # ------------------------------------------------------------------ #
    # concurrent traffic: delegate to a lazily created RoundScheduler
    # ------------------------------------------------------------------ #
    def scheduler(self, *, backend: BackendLike = None, seed: SeedLike = None):
        """This session's (lazily created) round-fusing request scheduler.

        ``backend``/``seed`` only apply when the scheduler is first created;
        asking for different settings later raises instead of silently
        returning the old scheduler — construct a
        :class:`~repro.service.scheduler.RoundScheduler` directly for
        several schedulers over one session.
        """
        from repro.service.scheduler import RoundScheduler

        with self._lock:
            self._check_open()
            if self._scheduler is None:
                self._scheduler = RoundScheduler(self, backend=backend, seed=seed)
            elif backend is not None or seed is not None:
                raise ValueError(
                    "this session's scheduler already exists; create a RoundScheduler "
                    "directly to use a different backend or root seed"
                )
            return self._scheduler

    def submit(self, k: Optional[int] = None, *, seed: SeedLike = None, **kwargs):
        """Queue a sample request for fused execution (see :meth:`drain`)."""
        return self.scheduler().submit(k, seed=seed, **kwargs)

    def drain(self) -> List[SampleResult]:
        """Run all queued requests, fusing concurrent rounds; results in
        submission order."""
        return self.scheduler().drain()

    # ------------------------------------------------------------------ #
    def serving_counters(self) -> Tuple[int, object]:
        """Locked snapshot of ``(samples_served, scheduler)`` for stats builders.

        External readers (``repro.obs.rollup.session_stats``) must come
        through here rather than reading the guarded attributes directly —
        the race harness enforces exactly that.
        """
        with self._lock:
            return self.samples_served, self._scheduler

    @property
    def stats(self) -> Dict[str, object]:
        """Serving statistics: cache counters plus per-session totals.

        Built by :func:`repro.obs.rollup.session_stats` — the documented
        stable schema shared with every other stats surface.
        """
        return obs.session_stats(self)
