"""Kernel registry: named ensembles a serving process accepts traffic for.

Workloads register a kernel **once** — paying validation (PSD / nPSD /
partition-structure checks) at registration time instead of per request —
and then open :class:`~repro.service.session.SamplerSession` objects against
the registered name.  Registered matrices are defensively copied and frozen
(``writeable=False``) so the content fingerprint that keys the factorization
cache cannot silently go stale.

Lifecycle: explicit registrations live until :meth:`KernelRegistry.unregister`.
*Ephemeral* registrations — the auto-named entries ``repro.serve(matrix)``
creates — are reference-counted by the sessions that opened them and expire
``anonymous_ttl`` seconds after the last session closes (sweeps run inside
ordinary registry operations; no background thread).  This is what keeps a
long-running serving process that churns through kernels from accumulating
registrations (and pinning their matrices) forever.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.dpp.kernels import validate_ensemble
from repro.service.cache import FactorizationCache
from repro.utils.fingerprint import kernel_fingerprint, partition_keys

__all__ = ["KERNEL_KINDS", "RegisteredKernel", "UpdateRecord", "KernelRegistry",
           "kernel_fingerprint", "updated_entry"]

#: distribution families the serving layer understands
KERNEL_KINDS = ("symmetric", "nonsymmetric", "partition", "lowrank")

#: default idle lifetime (seconds) of an ephemeral registration with no
#: open sessions; ``KernelRegistry(anonymous_ttl=...)`` overrides
DEFAULT_ANONYMOUS_TTL = 900.0


@dataclass(frozen=True)
class UpdateRecord:
    """One applied mutation in a kernel's fingerprint chain (metadata only).

    Records the op, the patch-vs-recompute decision taken, the delta payload
    size, and the chain fingerprint *after* the update — never the update's
    arrays, so a long-lived entry's log stays O(depth) bytes.
    """

    op: str
    decision: str
    delta_nbytes: int
    fingerprint: str


@dataclass
class RegisteredKernel:
    """One named kernel: the matrix, its family, and its content fingerprint.

    Incrementally updated kernels additionally carry their *chain* identity:
    ``epoch`` counts applied updates, ``base_fingerprint`` is the content
    fingerprint the chain started from (stable across updates — the cluster
    routes by it), and ``update_log`` records each link.  For a cold
    registration all three are at their defaults and ``fingerprint`` is the
    content fingerprint itself.
    """

    name: str
    kind: str
    matrix: np.ndarray
    fingerprint: str
    parts: Optional[Tuple[Tuple[int, ...], ...]] = None
    counts: Optional[Tuple[int, ...]] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    epoch: int = 0
    base_fingerprint: Optional[str] = None
    update_log: Tuple[UpdateRecord, ...] = ()

    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def route_fingerprint(self) -> str:
        """The placement-stable identity: base of the chain, or self if cold."""
        return self.base_fingerprint or self.fingerprint


def updated_entry(entry: RegisteredKernel, cache: FactorizationCache, update, *,
                  refactor: object = "auto") -> Tuple[RegisteredKernel, str]:
    """Apply one :class:`~repro.linalg.updates.KernelUpdate` to ``entry``.

    Returns ``(new_entry, decision)`` where ``decision`` is ``"patched"``
    (artifacts carried over incrementally from the predecessor's cache
    entry) or ``"recomputed"`` (cold lazy factorization — forced via
    ``refactor=True``, chosen by the planner's break-even policy under
    ``refactor="auto"``, or unavoidable because the predecessor was already
    evicted).  The new entry's ``fingerprint`` extends the chain
    (:meth:`KernelUpdate.chained_fingerprint`), its ``epoch`` increments,
    and the predecessor's cache entry is left warm for in-flight draws.

    This is the core shared by :meth:`KernelRegistry.apply_update`,
    standalone :class:`~repro.service.session.SamplerSession` updates, and
    shard nodes applying cluster deltas.
    """
    if entry.kind == "partition":
        raise ValueError("partition kernels do not support incremental updates "
                         "(their normalizer has no known update identity)")
    update.validate_for(entry.kind, entry.n)
    matrix = update.apply(entry.matrix, entry.kind)
    fingerprint = update.chained_fingerprint(entry.fingerprint)
    depth = len(entry.update_log) + 1
    if refactor == "auto":
        from repro.engine.planner import should_refactorize
        from repro.pram.cost import OracleCostHint

        hint = OracleCostHint(
            matrix_order=matrix.shape[0],
            rank=matrix.shape[1] if entry.kind == "lowrank" else None,
            update_depth=depth)
        recompute = should_refactorize(hint)
    else:
        recompute = bool(refactor)
    started = time.perf_counter()
    fact, decision = cache.adopt(
        entry.fingerprint, update, matrix=matrix, fingerprint=fingerprint,
        kind=entry.kind, patch=not recompute)
    seconds = time.perf_counter() - started
    if decision == "hit":
        decision = "patched"  # a racing update of identical content kept it warm
    record = UpdateRecord(op=update.op, decision=decision,
                          delta_nbytes=update.delta_nbytes,
                          fingerprint=fingerprint)
    new_entry = RegisteredKernel(
        name=entry.name, kind=entry.kind, matrix=fact.matrix,
        fingerprint=fingerprint, parts=entry.parts, counts=entry.counts,
        metadata=dict(entry.metadata), epoch=entry.epoch + 1,
        base_fingerprint=entry.route_fingerprint,
        update_log=entry.update_log + (record,))
    obs.record_kernel_update(entry.kind, decision, depth, seconds)
    return new_entry, decision


@dataclass
class _EphemeralState:
    """Refcount + idle timestamp of one auto-named registration."""

    sessions: int = 0
    idle_since: float = 0.0


class KernelRegistry:
    """Mutable name → :class:`RegisteredKernel` map sharing one cache.

    All operations are guarded by one registry lock (registration used to be
    start-up-only, but ephemeral ``serve(matrix)`` entries are now created
    and expired from concurrent request paths).  ``anonymous_ttl`` is the
    idle lifetime of ephemeral registrations: ``0`` unregisters as soon as
    the last session closes, ``None`` never expires them (the pre-TTL
    behavior); ``clock`` is injectable for tests and must be monotonic.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_entries", "_ephemeral")}

    def __init__(self, cache: Optional[FactorizationCache] = None, *,
                 anonymous_ttl: Optional[float] = DEFAULT_ANONYMOUS_TTL,
                 clock: Callable[[], float] = time.monotonic):
        if anonymous_ttl is not None and anonymous_ttl < 0:
            raise ValueError(f"anonymous_ttl must be nonnegative, got {anonymous_ttl}")
        self.cache = cache if cache is not None else FactorizationCache()
        self.anonymous_ttl = anonymous_ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: Dict[str, RegisteredKernel] = {}
        self._ephemeral: Dict[str, _EphemeralState] = {}
        obs.register_kernel_registry(self)

    # ------------------------------------------------------------------ #
    def register(self, name: str, matrix: np.ndarray, *, kind: str = "symmetric",
                 parts: Optional[Sequence[Sequence[int]]] = None,
                 counts: Optional[Sequence[int]] = None,
                 validate: bool = True, overwrite: bool = False,
                 ephemeral: bool = False, pin: bool = False, warm: bool = False,
                 metadata: Optional[Dict[str, object]] = None) -> RegisteredKernel:
        """Register ``matrix`` under ``name``; validation happens here, once.

        Re-registering the same name with identical content returns the
        existing entry; different content requires ``overwrite=True`` (which
        also invalidates the old entry's cached factorization).
        ``ephemeral=True`` marks the entry for TTL-based auto-unregistration
        once no session holds it (``repro.serve(matrix)`` uses this for its
        auto-named registrations); re-registering an ephemeral name
        non-ephemerally promotes it to a permanent entry.  ``pin=True``
        additionally takes one session reference *atomically with the
        registration* — without it, an ``anonymous_ttl=0`` sweep racing
        between register and a separate :meth:`acquire` could reap the
        brand-new entry.  ``warm=True`` precomputes the kind's factorization
        artifacts (:meth:`~repro.service.cache.KernelFactorization.warm`)
        before returning, so the first draw is already warm; the computation
        runs outside the registry lock.
        """
        from repro.distributions.lowrank import LowRankKernel

        if isinstance(matrix, LowRankKernel):
            # a LowRankKernel carries its own kind: auto-promote the default
            if kind == "symmetric":
                kind = "lowrank"
            if kind != "lowrank":
                raise ValueError(
                    f"a LowRankKernel registers as kind='lowrank', not {kind!r}")
            matrix = matrix.factor
        if kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {kind!r}; expected one of {KERNEL_KINDS}")
        if kind == "partition":
            if parts is None or counts is None:
                raise ValueError("partition kernels require parts= and counts=")
        elif parts is not None or counts is not None:
            raise ValueError(f"parts/counts are only valid for kind='partition', not {kind!r}")

        a = np.array(matrix, dtype=float, copy=True)
        if validate:
            if kind == "lowrank":
                # the registered matrix IS the (n, k) factor: validate shape,
                # finiteness and column rank in factor-sized time
                from repro.utils.validation import check_factor

                a = check_factor(a)
            else:
                validate_ensemble(a, symmetric=(kind != "nonsymmetric"))
        elif kind == "lowrank":
            # canonical layout even unvalidated: the content fingerprint
            # hashes bytes, and a fortran-ordered duplicate must not re-key
            a = np.ascontiguousarray(a)
        parts_key, counts_key = partition_keys(parts, counts)
        if kind == "partition":
            if validate:
                # structural checks (disjointness, coverage, feasible counts)
                # without paying the interpolation-grid normalizer here — the
                # factorization cache computes that lazily.
                from repro.dpp.partition import PartitionDPP
                PartitionDPP(a, parts_key, counts_key, validate=False)
        a.flags.writeable = False
        # the single shared derivation (utils/fingerprint.kernel_fingerprint):
        # cluster clients route by this key before any node recomputes it
        fingerprint = kernel_fingerprint(a, kind=kind, parts=parts_key,
                                         counts=counts_key)

        if warm and self.cache.capacity == 0:
            # a capacity-0 cache stores nothing: warming would compute the
            # full artifact set onto a throwaway object — loudly skip
            # instead of silently wasting the eigendecompositions
            warnings.warn(
                f"register(warm=True) skipped for {name!r}: the registry's "
                "factorization cache has capacity=0 (storage disabled), so "
                "warmed artifacts could not be retained",
                RuntimeWarning, stacklevel=2)
            warm = False

        with self._lock:
            self._sweep_locked()
            existing = self._entries.get(name)
            entry = None
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    if ephemeral:
                        state = self._ephemeral.get(name)
                        if state is not None and pin:
                            state.sessions += 1
                    else:
                        self._ephemeral.pop(name, None)  # promote to permanent
                    entry = existing
                elif not overwrite:
                    raise ValueError(
                        f"kernel {name!r} is already registered with different content; "
                        "pass overwrite=True to replace it"
                    )
                else:
                    self._invalidate_unshared_locked(existing.fingerprint, excluding=name)

            if entry is None:
                entry = RegisteredKernel(
                    name=name, kind=kind, matrix=a, fingerprint=fingerprint,
                    parts=parts_key, counts=counts_key, metadata=dict(metadata or {}),
                )
                self._entries[name] = entry
                if ephemeral:
                    self._ephemeral[name] = _EphemeralState(sessions=1 if pin else 0,
                                                            idle_since=self._clock())
                else:
                    self._ephemeral.pop(name, None)
            warm_state = None
            if warm:
                state = self._ephemeral.get(name)
                if state is not None:
                    # hold a temporary session pin across the warm-up so a
                    # TTL sweep cannot reap the brand-new ephemeral entry
                    # (and invalidate its cache slot) mid-eigendecomposition
                    state.sessions += 1
                    warm_state = state
        if warm:
            # outside the registry lock: eigendecompositions must not block
            # concurrent registry traffic.  The factorization is single-flight
            # per artifact, so racing warmers do not duplicate work.
            try:
                self.cache.factorization(entry.matrix, fingerprint=entry.fingerprint).warm(
                    entry.kind, entry.parts, entry.counts)
            finally:
                with self._lock:
                    # drop the temporary pin only if it still belongs to OUR
                    # state object — a concurrent overwrite may have replaced
                    # the ephemeral state, and decrementing the replacement
                    # would unpin another session's live entry
                    if warm_state is not None and self._ephemeral.get(name) is warm_state:
                        warm_state.sessions = max(warm_state.sessions - 1, 0)
                        if warm_state.sessions == 0:
                            warm_state.idle_since = self._clock()
                        self._sweep_locked()
                    if self._entries.get(name) is not entry:
                        # a concurrent unregister/overwrite (or the sweep
                        # just above) invalidated this fingerprint while we
                        # warmed: do not leave a stale fully-materialized
                        # cache entry behind (unless another registration
                        # still shares the content)
                        self._invalidate_unshared_locked(entry.fingerprint)
        return entry

    def apply_update(self, name: str, update, *, refactor: object = "auto",
                     expect_fingerprint: Optional[str] = None) -> RegisteredKernel:
        """Mutate kernel ``name`` incrementally instead of re-registering.

        Atomically (under the registry lock) replaces the entry with its
        updated successor — concurrent updates to one name serialize, each
        seeing the previous chain tip, and lookups never observe a
        half-applied entry.  ``expect_fingerprint`` (when given) must match
        the current chain tip or the update is refused — the guard shard
        nodes use to detect a replica whose chain has diverged from the
        client's.  The predecessor's cache entry is *not* invalidated:
        sessions still draining on the old epoch keep their warm artifacts,
        and LRU/TTL pressure reclaims it.  ``refactor`` is ``"auto"``
        (planner break-even policy), ``True`` (force a cold rebuild) or
        ``False`` (force the patch path).
        """
        with self._lock:
            entry = self.get(name)
            if expect_fingerprint is not None and entry.fingerprint != expect_fingerprint:
                raise ValueError(
                    f"kernel {name!r} chain is at {entry.fingerprint[:12]}..., "
                    f"update expected predecessor {expect_fingerprint[:12]}... "
                    "(stale or rebased replica)")
            new_entry, _decision = updated_entry(entry, self.cache, update,
                                                 refactor=refactor)
            self._entries[name] = new_entry
            return new_entry

    def unregister(self, name: str) -> bool:
        """Remove ``name``; its cached factorization is invalidated unless
        another registration of identical content still uses it."""
        with self._lock:
            entry = self._entries.pop(name, None)
            self._ephemeral.pop(name, None)
            if entry is None:
                return False
            self._invalidate_unshared_locked(entry.fingerprint)
            return True

    def _invalidate_unshared_locked(self, fingerprint: str,
                                    excluding: Optional[str] = None) -> None:
        """Invalidate a cache entry only when no (other) registration shares
        its content fingerprint — the cache is content-addressed, so two
        registrations of equal content hold one factorization between them."""
        for other_name, other in self._entries.items():
            if other_name != excluding and other.fingerprint == fingerprint:
                return
        self.cache.invalidate(fingerprint)

    # ------------------------------------------------------------------ #
    # ephemeral lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, name: str) -> RegisteredKernel:
        """Look up ``name`` and, if ephemeral, pin it for one open session."""
        with self._lock:
            entry = self.get(name)
            state = self._ephemeral.get(name)
            if state is not None:
                state.sessions += 1
            return entry

    def release(self, name: str) -> None:
        """Drop one session's pin; starts the TTL clock at zero sessions.

        No-op for permanent or already-unregistered names, so sessions can
        release unconditionally on close.
        """
        with self._lock:
            state = self._ephemeral.get(name)
            if state is not None:
                state.sessions = max(state.sessions - 1, 0)
                if state.sessions == 0:
                    state.idle_since = self._clock()
            self._sweep_locked()

    def sweep(self) -> int:
        """Unregister expired ephemeral entries; returns how many were dropped.

        Runs automatically inside ``register``/``release``/``serve`` — this
        public form exists for explicit maintenance ticks in long-running
        services.
        """
        with self._lock:
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        if self.anonymous_ttl is None:
            return 0
        now = self._clock()
        expired = [name for name, state in self._ephemeral.items()
                   if state.sessions == 0 and now - state.idle_since >= self.anonymous_ttl]
        for name in expired:
            del self._ephemeral[name]
            entry = self._entries.pop(name, None)
            if entry is not None:
                self._invalidate_unshared_locked(entry.fingerprint)
        return len(expired)

    def is_ephemeral(self, name: str) -> bool:
        """Whether ``name`` is an ephemeral (TTL-managed) registration."""
        with self._lock:
            return name in self._ephemeral

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegisteredKernel:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(
                    f"no kernel registered under {name!r}; known: {sorted(self._entries)}"
                ) from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def census(self) -> Dict[str, int]:
        """Registration counts alone — no TTL sweeps, no cache traffic.

        The lightweight form the obs collector polls at export time;
        :meth:`registry_info` is the full diagnostic (and sweeps the cache).
        """
        with self._lock:
            return {"registered": len(self._entries),
                    "ephemeral": len(self._ephemeral)}

    def registry_info(self) -> Dict[str, object]:
        """One-call snapshot of this registry for serving-layer diagnostics.

        Rolls the shared cache's :meth:`~repro.service.cache.FactorizationCache.cache_info`
        together with the registration census — the per-node payload that
        ``repro.cluster``'s ``cluster_info()`` aggregates across shards.
        """
        with self._lock:
            kernels = [
                {"name": entry.name, "kind": entry.kind, "n": entry.n,
                 "fingerprint": entry.fingerprint,
                 "base_fingerprint": entry.route_fingerprint,
                 "epoch": entry.epoch,
                 "ephemeral": name in self._ephemeral}
                for name, entry in sorted(self._entries.items())
            ]
        return {
            "kernels": kernels,
            "registered": len(kernels),
            "ephemeral": sum(1 for k in kernels if k["ephemeral"]),
            "cache": self.cache.cache_info(),
        }

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    def session(self, name: str, **kwargs) -> "SamplerSession":
        """Open a :class:`~repro.service.session.SamplerSession` on ``name``.

        Sessions on ephemeral registrations pin them until
        :meth:`~repro.service.session.SamplerSession.close`.
        """
        from repro.service.session import SamplerSession

        entry = self.acquire(name)
        release = self.is_ephemeral(name)
        return SamplerSession(entry, self.cache, registry=self, release=release,
                              **kwargs)
