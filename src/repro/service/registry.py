"""Kernel registry: named ensembles a serving process accepts traffic for.

Workloads register a kernel **once** — paying validation (PSD / nPSD /
partition-structure checks) at registration time instead of per request —
and then open :class:`~repro.service.session.SamplerSession` objects against
the registered name.  Registered matrices are defensively copied and frozen
(``writeable=False``) so the content fingerprint that keys the factorization
cache cannot silently go stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dpp.kernels import validate_ensemble
from repro.service.cache import FactorizationCache
from repro.utils.fingerprint import array_fingerprint

__all__ = ["KERNEL_KINDS", "RegisteredKernel", "KernelRegistry"]

#: distribution families the serving layer understands
KERNEL_KINDS = ("symmetric", "nonsymmetric", "partition")


@dataclass
class RegisteredKernel:
    """One named kernel: the matrix, its family, and its content fingerprint."""

    name: str
    kind: str
    matrix: np.ndarray
    fingerprint: str
    parts: Optional[Tuple[Tuple[int, ...], ...]] = None
    counts: Optional[Tuple[int, ...]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.matrix.shape[0]


class KernelRegistry:
    """Mutable name → :class:`RegisteredKernel` map sharing one cache.

    Thread-safety note: registration is expected at service start-up, so the
    registry uses plain dict operations (atomic under CPython); the heavy
    concurrent machinery lives in the cache and scheduler.
    """

    def __init__(self, cache: Optional[FactorizationCache] = None):
        self.cache = cache if cache is not None else FactorizationCache()
        self._entries: Dict[str, RegisteredKernel] = {}

    # ------------------------------------------------------------------ #
    def register(self, name: str, matrix: np.ndarray, *, kind: str = "symmetric",
                 parts: Optional[Sequence[Sequence[int]]] = None,
                 counts: Optional[Sequence[int]] = None,
                 validate: bool = True, overwrite: bool = False,
                 metadata: Optional[Dict[str, object]] = None) -> RegisteredKernel:
        """Register ``matrix`` under ``name``; validation happens here, once.

        Re-registering the same name with identical content returns the
        existing entry; different content requires ``overwrite=True`` (which
        also invalidates the old entry's cached factorization).
        """
        if kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {kind!r}; expected one of {KERNEL_KINDS}")
        if kind == "partition":
            if parts is None or counts is None:
                raise ValueError("partition kernels require parts= and counts=")
        elif parts is not None or counts is not None:
            raise ValueError(f"parts/counts are only valid for kind='partition', not {kind!r}")

        a = np.array(matrix, dtype=float, copy=True)
        if validate:
            validate_ensemble(a, symmetric=(kind != "nonsymmetric"))
        parts_key = None
        counts_key = None
        if kind == "partition":
            parts_key = tuple(tuple(sorted(int(i) for i in part)) for part in parts)
            counts_key = tuple(int(c) for c in counts)
            if validate:
                # structural checks (disjointness, coverage, feasible counts)
                # without paying the interpolation-grid normalizer here — the
                # factorization cache computes that lazily.
                from repro.dpp.partition import PartitionDPP
                PartitionDPP(a, parts_key, counts_key, validate=False)
        a.flags.writeable = False
        fingerprint = array_fingerprint(a, extra=(kind, parts_key, counts_key))

        existing = self._entries.get(name)
        if existing is not None:
            if existing.fingerprint == fingerprint:
                return existing
            if not overwrite:
                raise ValueError(
                    f"kernel {name!r} is already registered with different content; "
                    "pass overwrite=True to replace it"
                )
            self.cache.invalidate(existing.fingerprint)

        entry = RegisteredKernel(
            name=name, kind=kind, matrix=a, fingerprint=fingerprint,
            parts=parts_key, counts=counts_key, metadata=dict(metadata or {}),
        )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> bool:
        """Remove ``name`` and invalidate its cached factorization."""
        entry = self._entries.pop(name, None)
        if entry is None:
            return False
        self.cache.invalidate(entry.fingerprint)
        return True

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegisteredKernel:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"no kernel registered under {name!r}; known: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    def session(self, name: str, **kwargs) -> "SamplerSession":
        """Open a :class:`~repro.service.session.SamplerSession` on ``name``."""
        from repro.service.session import SamplerSession

        return SamplerSession(self.get(name), self.cache, **kwargs)
