"""Cross-request round fusion: one engine round for many concurrent samples.

The paper's samplers spend their wall-clock answering batched counting-oracle
rounds (:class:`~repro.engine.batch.OracleBatch`).  When a serving process
has several sample requests in flight against the *same* distribution, their
per-round query batches are independent — so instead of executing one small
batch per request, the :class:`RoundScheduler` runs each request on its own
thread behind a :class:`_FusingBackend` proxy that parks every submitted
batch at a rendezvous; once all live requests are parked, the compatible
batches are **fused** (same kind, same distribution object → subsets
concatenated; identical marginal-vector queries → answered once and shared;
same-shape HKPV ``projection_step`` rounds → bases stacked into one batched
QR) and executed as a single batch through the real execution backend, then
split back per request.  Spectral (HKPV) requests are submitted with
``submit(..., method="spectral")``: concurrent same-kernel requests run
phase 2 in lockstep, so every step fuses.

The scheduler's backend may be any engine backend, including
``backend="process"``: fused batches then ship through the process backend's
shared-memory kernel store and execute across worker processes, which is how
fused rounds escape the GIL on the pure-Python oracle paths (named backends
resolve to one shared instance, so every drain reuses the same worker pool
and published kernel segments).

Determinism contract: fusion never touches a request's random stream (each
request owns a generator, by explicit seed or a :func:`repro.utils.rng.substream`
of the scheduler's root seed) and the stacked oracle primitives answer each
query independently of its neighbours in the stack, so a fixed-seed request
returns the identical sample fused or unfused, on every backend.  PRAM depth
is likewise preserved: each request's tracker is charged one round per batch
exactly as unfused execution would; the fused round's *work* is accounted on
the scheduler (see :attr:`RoundScheduler.stats`) since it is genuinely shared.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.result import SampleResult
from repro.engine import BackendLike, ExecutionBackend, OracleBatch, OracleBatchResult, resolve_backend
from repro.pram.tracker import Tracker
from repro.utils.rng import SeedLike, substream

__all__ = ["RoundScheduler", "SampleTicket"]

#: seconds between barrier re-checks (wake-ups also happen on every submit/finish)
_POLL_INTERVAL = 0.02


@dataclass
class SampleTicket:
    """Handle for one submitted request; resolved by ``drain()``."""

    index: int
    k: Optional[int]
    seed: SeedLike
    method: str = "parallel"
    kwargs: Dict[str, object] = field(default_factory=dict)
    result: Optional[SampleResult] = None
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)
    #: when the request entered the queue (drives the queue-wait histogram)
    submitted_at: float = field(default_factory=time.perf_counter)
    #: the session's kernel epoch at submission time — requests queued before
    #: and after an incremental update are distinguishable after the drain
    epoch: Optional[int] = None
    #: trace context captured at submit() time — drain threads do not
    #: inherit context vars, so the request's trace parent rides the ticket
    #: (``None`` when tracing is off or the submitter is untraced)
    trace: Optional[obs.TraceContext] = None


@dataclass
class _PendingExec:
    """One request's parked OracleBatch awaiting the fusion rendezvous."""

    batch: OracleBatch
    tracker: Optional[Tracker]
    result: Optional[OracleBatchResult] = None
    error: Optional[BaseException] = None
    #: the parking request's trace context — the fused round links back to
    #: every member's request span through these
    ctx: Optional[obs.TraceContext] = None


class _FusionCoordinator:
    """Barrier + merge point shared by the request threads of one drain."""

    def __init__(self, inner: ExecutionBackend, active: int):
        self._inner = inner
        self._cond = threading.Condition()
        self._active = active
        self._pending: List[_PendingExec] = []
        self._flushing = False
        self._scratch = Tracker()
        self.fused_rounds = 0
        self.executed_batches = 0
        self.submitted_batches = 0

    # ------------------------------------------------------------------ #
    def job_done(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def execute(self, batch: OracleBatch, tracker: Optional[Tracker]) -> OracleBatchResult:
        """Park ``batch`` until every live request has parked, then fuse.

        Whichever thread observes the full barrier becomes the leader and
        performs the fused execution with the condition released, so parked
        threads (and late finishers) keep making progress.
        """
        entry = _PendingExec(batch, tracker, ctx=obs.current_context())
        with self._cond:
            self._pending.append(entry)
            self.submitted_batches += 1
            self._cond.notify_all()
            while entry.result is None and entry.error is None:
                barrier_full = (not self._flushing and self._pending
                                and len(self._pending) >= self._active)
                if barrier_full:
                    taken = list(self._pending)
                    self._pending.clear()
                    self._flushing = True
                    self._cond.release()
                    try:
                        self._flush(taken)
                    finally:
                        self._cond.acquire()
                        self._flushing = False
                        self._cond.notify_all()
                else:
                    self._cond.wait(_POLL_INTERVAL)
        if entry.error is not None:
            raise entry.error
        return entry.result

    # ------------------------------------------------------------------ #
    def _flush(self, entries: List[_PendingExec]) -> None:
        self.fused_rounds += 1
        obs.record_fusion(len(entries))
        for group in self._group(entries).values():
            try:
                self._execute_group(group)
            except BaseException as exc:  # surface on every member request
                for member in group:
                    member.error = exc

    @staticmethod
    def _group(entries: List[_PendingExec]) -> Dict[tuple, List[_PendingExec]]:
        """Fusable groups: same kind against the same distribution/matrix.

        ``marginal_vector`` additionally keys on ``given`` — equal keys mean
        the *identical* query, answered once and shared by every member.
        ``projection_step`` keys on the basis *shape* (plus whether the step
        eliminates an element): every member has its own basis, and
        same-shape steps — concurrent same-kernel HKPV requests run phase 2
        in lockstep — stack into one batched QR round.
        """
        groups: Dict[tuple, List[_PendingExec]] = {}
        for entry in entries:
            b = entry.batch
            if b.kind == "marginal_vector":
                key = (b.kind, id(b.distribution), b.given)
            elif b.kind == "projection_step":
                key = (b.kind, b.matrix.shape, bool(b.given))
            elif b.kind == "log_principal_minors":
                key = (b.kind, id(b.matrix))
            else:
                key = (b.kind, id(b.distribution))
            groups.setdefault(key, []).append(entry)
        return groups

    def _execute_group(self, group: List[_PendingExec]) -> None:
        first = group[0].batch
        start = time.perf_counter()
        if first.kind == "projection_step" and len(group) > 1:
            self._execute_projection_group(group)
            return
        if first.kind == "marginal_vector" or len(group) == 1:
            # identical query (or nothing to merge): one execution, shared
            with self._fused_span(group):
                shared = self._inner.execute(first, tracker=self._scratch)
            self.executed_batches += 1
            elapsed = time.perf_counter() - start
            for member in group:
                self._charge(member)
                member.result = OracleBatchResult(
                    values=shared.values.copy(), backend=f"fused({self._inner.name})",
                    wall_time=elapsed, n_queries=member.batch.n_queries,
                    artifacts=dict(shared.artifacts))
            return
        # concatenate subsets into one batch; split the stacked answer back
        offsets = [0]
        subsets: List[tuple] = []
        for member in group:
            subsets.extend(member.batch.subsets)
            offsets.append(len(subsets))
        merged = OracleBatch(kind=first.kind, distribution=first.distribution,
                             matrix=first.matrix, subsets=tuple(subsets),
                             label=f"fused-{first.label}")
        with self._fused_span(group):
            fused = self._inner.execute(merged, tracker=self._scratch)
        self.executed_batches += 1
        elapsed = time.perf_counter() - start
        for member, lo, hi in zip(group, offsets[:-1], offsets[1:]):
            self._charge(member)
            member.result = OracleBatchResult(
                values=np.asarray(fused.values[lo:hi]).copy(),
                backend=f"fused({self._inner.name})",
                wall_time=elapsed, n_queries=hi - lo)

    def _execute_projection_group(self, group: List[_PendingExec]) -> None:
        """Stack same-shape HKPV steps into one batched projection round.

        Every member contributes its own ``(n, m)`` basis (and eliminated
        element, when the step has one); the stacked ``(G, n, m)`` batch
        runs the identical per-slice numerics
        (:func:`repro.linalg.batch.hkpv_projection_step` is gufunc-only), so
        each request's weights — and therefore its fixed-seed sample — match
        unfused execution bitwise, while ``G`` small QR factorizations
        collapse into one batched LAPACK round.
        """
        first = group[0].batch
        start = time.perf_counter()
        stacked = np.stack([member.batch.matrix for member in group])
        eliminate = (tuple(member.batch.given[0] for member in group)
                     if first.given else None)
        merged = OracleBatch.projection_step(stacked, eliminate=eliminate,
                                             label=f"fused-{first.label}")
        with self._fused_span(group):
            fused = self._inner.execute(merged, tracker=self._scratch)
        self.executed_batches += 1
        elapsed = time.perf_counter() - start
        rows = first.matrix.shape[0]
        bases = fused.artifacts["bases"]
        for position, member in enumerate(group):
            self._charge(member)
            member.result = OracleBatchResult(
                values=np.asarray(fused.values[position * rows:(position + 1) * rows]).copy(),
                backend=f"fused({self._inner.name})",
                wall_time=elapsed, n_queries=rows,
                artifacts={"bases": [bases[position]]})

    @staticmethod
    def _fused_span(group: List[_PendingExec]):
        """Span for one fused execution, **linked** to every member request.

        The leader thread's ambient context (its own request span) parents
        the fused span — so the engine round executed inside becomes its
        child — while the links attribute the shared work to every fused
        request, including requests from *other* trace trees.  A no-op
        context manager when tracing is off.
        """
        first = group[0].batch
        links = [member.ctx for member in group if member.ctx is not None]
        return obs.span(f"fused-{first.kind}", category="fused_round",
                        links=links or None, width=len(group),
                        kind=first.kind, queries=first.n_queries)

    @staticmethod
    def _charge(member: _PendingExec) -> None:
        """Charge the member's tracker exactly as unfused execution would:
        one adaptive round, ``n_queries`` machines."""
        if member.tracker is None:
            return
        with member.tracker.round(member.batch.label):
            member.tracker.charge(machines=float(member.batch.n_queries))

    @property
    def shared_work(self) -> float:
        return self._scratch.work


class _FusingBackend(ExecutionBackend):
    """Per-request proxy backend that routes every round to the coordinator."""

    name = "fused"

    def __init__(self, coordinator: _FusionCoordinator):
        self._coordinator = coordinator

    def execute(self, batch: OracleBatch, *, tracker: Optional[Tracker] = None) -> OracleBatchResult:
        return self._coordinator.execute(batch, tracker)

    # the abstract hooks are never reached — execute() is fully overridden
    def _counting(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _joint_marginals(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError

    def _log_principal_minors(self, batch, tracker):  # pragma: no cover
        raise NotImplementedError


class RoundScheduler:
    """Thread-safe ``submit()`` / ``drain()`` front of one sampler session.

    ``submit`` queues a request (assigning it a deterministic
    :func:`~repro.utils.rng.substream` of the scheduler's root seed when no
    explicit seed is given); ``drain`` launches all queued requests
    concurrently, fuses their engine rounds, and returns results in
    submission order.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_queued", "_submitted", "drains", "fused_rounds",
                             "executed_batches", "submitted_batches", "shared_work")}

    def __init__(self, session, *, backend: BackendLike = None, seed: SeedLike = None,
                 max_concurrency: int = 64):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be positive, got {max_concurrency}")
        self.session = session
        self._backend = backend if backend is not None else session.backend
        self._root_seed = seed if seed is not None else 0
        self.max_concurrency = int(max_concurrency)
        self._lock = threading.Lock()
        self._queued: List[SampleTicket] = []
        self._submitted = 0
        self.drains = 0
        self.fused_rounds = 0
        self.executed_batches = 0
        self.submitted_batches = 0
        self.shared_work = 0.0

    # ------------------------------------------------------------------ #
    def submit(self, k: Optional[int] = None, *, seed: SeedLike = None,
               method: str = "parallel",
               trace: Optional[obs.TraceContext] = None,
               **kwargs) -> SampleTicket:
        """Queue one sample request; returns its ticket.

        ``method`` selects the sampler family: ``"parallel"`` (the paper's
        batched samplers; the default) or ``"spectral"`` (the HKPV sampler,
        symmetric kernels only) — spectral requests fuse too, their lockstep
        phase-2 projection rounds stacking into single batched QR rounds
        across requests sharing one eigenbasis.  ``kwargs`` are forwarded to
        ``session.sample()`` (e.g. ``config=``, ``delta=``); ``backend`` is
        owned by the scheduler (set ``backend=`` on the scheduler itself)
        and is rejected here rather than failing at drain time.

        ``trace`` is the submitter's trace context — defaults to the one
        active on the submitting thread (shard nodes pass the context that
        arrived in the wire frame), and parents the request's span tree at
        drain time since drain threads do not inherit context vars.
        """
        if "backend" in kwargs:
            raise TypeError(
                "submit() does not accept ['backend']: the scheduler executes fused "
                "rounds on its own backend (set backend= on the scheduler)"
            )
        if method not in ("parallel", "spectral", "lowrank"):
            raise ValueError(f"unknown sampling method {method!r}")
        if method == "spectral" and self.session.entry.kind != "symmetric":
            raise ValueError(
                f"method='spectral' requires a symmetric kernel, "
                f"got kind={self.session.entry.kind!r}"
            )
        if method == "lowrank" and self.session.entry.kind != "lowrank":
            raise ValueError(
                f"method='lowrank' requires a LowRankKernel registration, "
                f"got kind={self.session.entry.kind!r}"
            )
        if trace is None:
            trace = obs.current_context()
        with self._lock:
            index = self._submitted
            self._submitted += 1
            if seed is None:
                seed = substream(self._root_seed, index)
            ticket = SampleTicket(index=index, k=k, seed=seed, method=method,
                                  kwargs=dict(kwargs),
                                  epoch=getattr(self.session, "epoch", None),
                                  trace=trace)
            self._queued.append(ticket)
            return ticket

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queued)

    # ------------------------------------------------------------------ #
    def drain(self) -> List[SampleResult]:
        """Run every queued request to completion with round fusion.

        Results are returned in submission order; the first request error is
        re-raised after all threads have finished (tickets keep per-request
        errors either way).  At most ``max_concurrency`` requests run (and
        fuse) at once — larger queues are drained in deterministic waves, so
        heavy traffic cannot exhaust OS threads.
        """
        with self._lock:
            tickets = list(self._queued)
            self._queued.clear()
        if not tickets:
            return []
        started = time.perf_counter()
        inner = resolve_backend(self._backend)
        for start in range(0, len(tickets), self.max_concurrency):
            self._drain_wave(tickets[start:start + self.max_concurrency], inner)
        with self._lock:
            self.drains += 1
        obs.record_drain(time.perf_counter() - started, len(tickets))
        for ticket in tickets:
            if ticket.error is not None:
                raise ticket.error
        return [ticket.result for ticket in tickets]

    def _drain_wave(self, tickets: List[SampleTicket], inner: ExecutionBackend) -> None:
        coordinator = _FusionCoordinator(inner, active=len(tickets))
        threads = [
            threading.Thread(
                target=self._run_one, args=(ticket, coordinator),
                name=f"repro-serve-{ticket.index}", daemon=True,
            )
            for ticket in tickets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with self._lock:  # concurrent drain() calls merge counters safely
            self.fused_rounds += coordinator.fused_rounds
            self.executed_batches += coordinator.executed_batches
            self.submitted_batches += coordinator.submitted_batches
            self.shared_work += coordinator.shared_work
        obs.record_batch_counts(coordinator.submitted_batches,
                                coordinator.executed_batches)

    def _run_one(self, ticket: SampleTicket, coordinator: _FusionCoordinator) -> None:
        try:
            waited = time.perf_counter() - ticket.submitted_at
            obs.record_queue_wait(waited)
            proxy = _FusingBackend(coordinator)
            # re-activate the submit-time context (fresh threads start with
            # none), then scope the whole execution under a request span
            # whose start is the *submission* instant — with the queue wait
            # recorded as a child span, time-in-queue is separable from
            # execution in the same tree
            with obs.activate(ticket.trace), \
                    obs.request("scheduled-request",
                                family=self.session.entry.kind,
                                start=ticket.submitted_at,
                                index=ticket.index, method=ticket.method):
                queue_span = obs.start_span("queue-wait", category="queue",
                                            start=ticket.submitted_at)
                obs.end_span(queue_span, end=ticket.submitted_at + waited)
                ticket.result = self.session.sample(
                    ticket.k, seed=ticket.seed, method=ticket.method,
                    backend=proxy, **ticket.kwargs)
        except BaseException as exc:
            ticket.error = exc
        finally:
            ticket.done.set()
            coordinator.job_done()

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> Dict[str, object]:
        # Snapshot under the lock: a concurrent drain() merges several
        # counters at once, and an unlocked read could observe a drain whose
        # fused_rounds had landed but whose executed_batches had not.
        with self._lock:
            return {
                "drains": self.drains,
                "fused_rounds": self.fused_rounds,
                "submitted_batches": self.submitted_batches,
                "executed_batches": self.executed_batches,
                "shared_work": self.shared_work,
            }
