"""Graph workload helpers for the planar-matching experiments."""

from __future__ import annotations

from typing import List, Tuple


def benchmark_grid_sizes(max_vertices: int = 144) -> List[Tuple[int, int]]:
    """Square-ish grid dimensions with an even vertex count, up to ``max_vertices``.

    Used by the Theorem 11 benchmark to sweep ``n``; every returned grid has a
    perfect matching (even number of vertices).
    """
    sizes: List[Tuple[int, int]] = []
    side = 2
    while side * side <= max_vertices:
        rows, cols = side, side
        if (rows * cols) % 2 == 1:
            cols += 1
        if rows * cols <= max_vertices:
            sizes.append((rows, cols))
        side += 2
    return sizes
