"""Synthetic datasets for the example applications.

The paper motivates DPPs with data summarization, recommender diversity, and
randomized numerical linear algebra; the generators here create small synthetic
versions of those workloads (feature vectors with cluster structure and
quality scores) so the examples are runnable offline and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass
class Document:
    """A synthetic "document": an embedding, a topic label, and a quality score."""

    identifier: int
    topic: int
    quality: float
    embedding: np.ndarray


def synthetic_documents(num_documents: int = 40, *, num_topics: int = 4, dimension: int = 8,
                        seed: SeedLike = 0) -> List[Document]:
    """Documents clustered around ``num_topics`` random topic centroids."""
    rng = as_generator(seed)
    centroids = rng.standard_normal((num_topics, dimension)) * 3.0
    documents: List[Document] = []
    for identifier in range(num_documents):
        topic = int(rng.integers(num_topics))
        embedding = centroids[topic] + rng.standard_normal(dimension)
        quality = float(0.5 + rng.random())
        documents.append(Document(identifier, topic, quality, embedding))
    return documents


def documents_to_ensemble(documents: List[Document], *, bandwidth: float = 2.0) -> np.ndarray:
    """Quality/diversity ensemble matrix ``L_{ij} = q_i q_j exp(-d²/2bw²)``."""
    embeddings = np.stack([doc.embedding for doc in documents])
    quality = np.array([doc.quality for doc in documents])
    sq_norms = np.sum(embeddings ** 2, axis=1)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * embeddings @ embeddings.T
    similarity = np.exp(-np.clip(sq_dists, 0.0, None) / (2.0 * bandwidth ** 2))
    L = (quality[:, None] * similarity) * quality[None, :]
    return 0.5 * (L + L.T)


@dataclass
class CatalogItem:
    """A synthetic catalog item for the recommendation example."""

    identifier: int
    category: int
    popularity: float
    embedding: np.ndarray


def synthetic_catalog(num_items: int = 60, *, num_categories: int = 3, dimension: int = 6,
                      seed: SeedLike = 1) -> List[CatalogItem]:
    """Catalog items grouped into categories with popularity scores."""
    rng = as_generator(seed)
    centroids = rng.standard_normal((num_categories, dimension)) * 2.5
    items: List[CatalogItem] = []
    for identifier in range(num_items):
        category = identifier % num_categories
        embedding = centroids[category] + rng.standard_normal(dimension) * 0.8
        popularity = float(np.exp(rng.normal(0.0, 0.4)))
        items.append(CatalogItem(identifier, category, popularity, embedding))
    return items


def catalog_to_ensemble(items: List[CatalogItem], *, bandwidth: float = 2.0) -> Tuple[np.ndarray, List[List[int]]]:
    """Ensemble matrix plus the category partition (for Partition-DPP use)."""
    embeddings = np.stack([item.embedding for item in items])
    popularity = np.array([item.popularity for item in items])
    sq_norms = np.sum(embeddings ** 2, axis=1)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * embeddings @ embeddings.T
    similarity = np.exp(-np.clip(sq_dists, 0.0, None) / (2.0 * bandwidth ** 2))
    L = (popularity[:, None] * similarity) * popularity[None, :]
    num_categories = max(item.category for item in items) + 1
    parts = [[item.identifier for item in items if item.category == c] for c in range(num_categories)]
    return 0.5 * (L + L.T), parts
