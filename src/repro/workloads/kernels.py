"""Random ensemble-matrix generators.

These produce the synthetic kernels the experiments sweep over:

* :func:`random_psd_ensemble` / :func:`random_low_rank_ensemble` — generic PSD
  ensembles with controllable spectrum (the Theorem 10 workload);
* :func:`rbf_kernel_ensemble` — Gaussian-kernel similarity of random feature
  vectors (the data-summarization / Nyström workload of the examples);
* :func:`random_low_rank_factor_ensemble` / :func:`rbf_factor_ensemble` —
  explicit ``n x rank`` factors of the two Gram ensembles above, for the
  sublinear tier (never materialize the ``n x n`` kernel);
* :func:`clustered_ensemble` — block-structured similarities with a natural
  grouping (the Partition-DPP workload of Theorem 9);
* :func:`random_npsd_ensemble` — nonsymmetric PSD ensembles built as
  ``L = S + A`` with ``S ⪰ 0`` and ``A`` skew-symmetric (the Theorem 8
  workload; nonsymmetric DPPs can model positive correlations);
* :func:`bounded_spectrum_ensemble` — PSD ensembles whose marginal kernel has
  a prescribed ``λmax`` and trace (the Theorem 41 workload).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.psd import random_orthogonal
from repro.utils.rng import SeedLike, as_generator


def random_psd_ensemble(n: int, *, rank: Optional[int] = None, scale: float = 1.0,
                        seed: SeedLike = None) -> np.ndarray:
    """Random PSD matrix ``L = B Bᵀ`` with ``B`` an ``n x rank`` Gaussian matrix."""
    rng = as_generator(seed)
    r = n if rank is None else int(rank)
    if r <= 0 or r > n:
        raise ValueError(f"rank must lie in [1, {n}], got {r}")
    B = rng.standard_normal((n, r)) * np.sqrt(scale / max(r, 1))
    return B @ B.T


def random_low_rank_ensemble(n: int, rank: int, *, eigenvalue_scale: float = 2.0,
                             seed: SeedLike = None) -> np.ndarray:
    """PSD ensemble with exactly ``rank`` nonzero eigenvalues of size ``Θ(eigenvalue_scale)``."""
    rng = as_generator(seed)
    if not 1 <= rank <= n:
        raise ValueError(f"rank must lie in [1, {n}]")
    Q = random_orthogonal(n, rng)
    eigenvalues = np.zeros(n)
    eigenvalues[:rank] = eigenvalue_scale * (0.5 + rng.random(rank))
    return (Q * eigenvalues) @ Q.T


def rbf_kernel_ensemble(n: int, *, dimension: int = 5, bandwidth: float = 1.0,
                        quality: Optional[np.ndarray] = None,
                        seed: SeedLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian (RBF) similarity ensemble of random feature vectors.

    Returns ``(L, features)``; ``L_{ij} = q_i q_j exp(-||x_i - x_j||² / (2 bw²))``
    with optional per-item quality scores ``q`` (the standard quality/diversity
    decomposition of DPP applications).
    """
    rng = as_generator(seed)
    features = rng.standard_normal((n, dimension))
    sq_norms = np.sum(features ** 2, axis=1)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * features @ features.T
    similarity = np.exp(-np.clip(sq_dists, 0.0, None) / (2.0 * bandwidth ** 2))
    if quality is None:
        quality = 0.5 + rng.random(n)
    q = np.asarray(quality, dtype=float)
    L = (q[:, None] * similarity) * q[None, :]
    # symmetrize against floating point noise
    return 0.5 * (L + L.T), features


def random_low_rank_factor_ensemble(n: int, rank: int, *, eigenvalue_scale: float = 2.0,
                                    seed: SeedLike = None) -> Tuple[np.ndarray, Dict[str, object]]:
    """Explicit ``n x rank`` factor ``B`` of a random rank-``rank`` PSD ensemble.

    The sublinear-tier sibling of :func:`random_low_rank_ensemble`: the
    ensemble ``L = B Bᵀ`` has exactly ``rank`` nonzero eigenvalues of size
    ``Θ(eigenvalue_scale)``, but only the factor is ever formed — memory is
    ``O(n·rank)``, so ``n`` in the 10^5–10^6 range stays cheap.  Returns
    ``(B, metadata)`` with the planted eigenvalues in ``metadata``; wrap ``B``
    in :class:`repro.LowRankKernel` to sample from it.
    """
    rng = as_generator(seed)
    if not 1 <= rank <= n:
        raise ValueError(f"rank must lie in [1, {n}]")
    gaussian = rng.standard_normal((n, rank))
    basis, _ = np.linalg.qr(gaussian)
    eigenvalues = eigenvalue_scale * (0.5 + rng.random(rank))
    factor = np.ascontiguousarray(basis * np.sqrt(eigenvalues))
    metadata: Dict[str, object] = {"rank": int(rank),
                                   "eigenvalues": eigenvalues,
                                   "eigenvalue_scale": float(eigenvalue_scale)}
    return factor, metadata


def rbf_factor_ensemble(n: int, rank: int, *, dimension: int = 5, bandwidth: float = 1.0,
                        quality: Optional[np.ndarray] = None,
                        seed: SeedLike = None) -> Tuple[np.ndarray, Dict[str, object]]:
    """Random-Fourier-feature factor of a Gaussian-similarity ensemble.

    The sublinear-tier sibling of :func:`rbf_kernel_ensemble`: ``rank`` random
    Fourier features [Rahimi–Recht] give ``B`` with ``(B Bᵀ)_{ij} ≈ q_i q_j
    exp(-||x_i - x_j||² / (2 bw²))``, without ever forming the ``n x n``
    similarity matrix.  Returns ``(B, metadata)`` with the raw feature vectors
    and quality scores in ``metadata``; wrap ``B`` in
    :class:`repro.LowRankKernel` to sample from it.
    """
    rng = as_generator(seed)
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    features = rng.standard_normal((n, dimension))
    frequencies = rng.standard_normal((dimension, rank)) / bandwidth
    phases = rng.uniform(0.0, 2.0 * np.pi, size=rank)
    fourier = np.sqrt(2.0 / rank) * np.cos(features @ frequencies + phases)
    if quality is None:
        quality = 0.5 + rng.random(n)
    q = np.asarray(quality, dtype=float)
    factor = np.ascontiguousarray(q[:, None] * fourier)
    metadata: Dict[str, object] = {"rank": int(rank), "features": features,
                                   "quality": q, "bandwidth": float(bandwidth)}
    return factor, metadata


def clustered_ensemble(cluster_sizes: Sequence[int], *, within: float = 0.85,
                       across: float = 0.05, scale: float = 2.0,
                       seed: SeedLike = None) -> Tuple[np.ndarray, list]:
    """Block-structured PSD ensemble with strong within-cluster similarity.

    Returns ``(L, parts)`` where ``parts[i]`` lists the ground-set indices of
    cluster ``i`` — ready to be used as the partition of a Partition-DPP.
    """
    rng = as_generator(seed)
    sizes = [int(s) for s in cluster_sizes]
    if any(s <= 0 for s in sizes):
        raise ValueError("cluster sizes must be positive")
    n = sum(sizes)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    base = np.where(labels[:, None] == labels[None, :], within, across)
    np.fill_diagonal(base, 1.0)
    # jitter to avoid exact degeneracy, then project to PSD via a Gram construction
    noise = rng.standard_normal((n, n)) * 0.01
    sym = 0.5 * (base + base.T) + 0.5 * (noise + noise.T)
    eigenvalues, vectors = np.linalg.eigh(sym)
    eigenvalues = np.clip(eigenvalues, 1e-3, None) * scale
    L = (vectors * eigenvalues) @ vectors.T
    parts = []
    start = 0
    for s in sizes:
        parts.append(list(range(start, start + s)))
        start += s
    return 0.5 * (L + L.T), parts


def random_npsd_ensemble(n: int, *, symmetric_scale: float = 1.0, skew_scale: float = 1.0,
                         rank: Optional[int] = None, seed: SeedLike = None) -> np.ndarray:
    """Random nonsymmetric PSD ensemble ``L = S + A`` (``S ⪰ 0``, ``A = -Aᵀ``).

    ``L + Lᵀ = 2S ⪰ 0`` so Definition 4 holds by construction; the skew part
    introduces the positive correlations symmetric DPPs cannot express.
    """
    rng = as_generator(seed)
    S = random_psd_ensemble(n, rank=rank, scale=symmetric_scale, seed=rng)
    G = rng.standard_normal((n, n)) * skew_scale / np.sqrt(n)
    A = 0.5 * (G - G.T)
    return S + A


def spiked_spectrum_ensemble(n: int, *, num_spikes: int = 2, spike_value: float = 0.9,
                             background: float = 0.002, seed: SeedLike = None) -> np.ndarray:
    """PSD ensemble whose marginal kernel has a few large eigenvalues.

    ``num_spikes`` kernel eigenvalues sit at ``spike_value`` and the rest at
    ``background``, so ``λmax(K)`` is large while ``tr(K) ≈ num_spikes·spike``
    stays small — the regime where Theorem 41's *trace* route wins.
    """
    rng = as_generator(seed)
    if not 0 < spike_value < 1 or not 0 <= background < 1:
        raise ValueError("kernel eigenvalues must lie in [0, 1)")
    if not 0 <= num_spikes <= n:
        raise ValueError("num_spikes must lie in [0, n]")
    Q = random_orthogonal(n, rng)
    kernel_eigenvalues = np.full(n, background)
    kernel_eigenvalues[:num_spikes] = spike_value
    ensemble_eigenvalues = kernel_eigenvalues / (1.0 - kernel_eigenvalues)
    return (Q * ensemble_eigenvalues) @ Q.T


def bounded_spectrum_ensemble(n: int, *, kernel_lambda_max: float = 0.2,
                              expected_size: Optional[float] = None,
                              seed: SeedLike = None) -> np.ndarray:
    """PSD ensemble whose *marginal kernel* has ``λmax(K) ≈ kernel_lambda_max``.

    Optionally rescales the spectrum so that ``tr(K) ≈ expected_size`` (the
    expected sample cardinality), which is the knob Theorem 41's two depth
    regimes trade off.
    """
    rng = as_generator(seed)
    if not 0 < kernel_lambda_max < 1:
        raise ValueError("kernel_lambda_max must lie in (0, 1)")
    Q = random_orthogonal(n, rng)
    kernel_eigenvalues = kernel_lambda_max * rng.random(n)
    if expected_size is not None:
        current = kernel_eigenvalues.sum()
        if current <= 0:
            raise ValueError("degenerate spectrum")
        factor = min(expected_size / current, 0.999 / max(kernel_eigenvalues.max(), 1e-12))
        kernel_eigenvalues = kernel_eigenvalues * factor
    ensemble_eigenvalues = kernel_eigenvalues / (1.0 - kernel_eigenvalues)
    return (Q * ensemble_eigenvalues) @ Q.T
