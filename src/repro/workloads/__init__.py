"""Synthetic workload generators used by the examples, tests, and benchmarks."""

from repro.workloads.kernels import (
    random_psd_ensemble,
    random_low_rank_ensemble,
    random_low_rank_factor_ensemble,
    rbf_kernel_ensemble,
    rbf_factor_ensemble,
    clustered_ensemble,
    random_npsd_ensemble,
    bounded_spectrum_ensemble,
    spiked_spectrum_ensemble,
)
from repro.workloads.graphs import benchmark_grid_sizes
from repro.workloads.datasets import synthetic_documents, synthetic_catalog

__all__ = [
    "random_psd_ensemble",
    "random_low_rank_ensemble",
    "random_low_rank_factor_ensemble",
    "rbf_kernel_ensemble",
    "rbf_factor_ensemble",
    "clustered_ensemble",
    "random_npsd_ensemble",
    "bounded_spectrum_ensemble",
    "spiked_spectrum_ensemble",
    "benchmark_grid_sizes",
    "synthetic_documents",
    "synthetic_catalog",
]
