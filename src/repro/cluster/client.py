"""Cluster client: consistent-hash routing, replication, and the session facade.

:class:`ClusterClient` is the piece every serving process embeds: it holds
the :class:`~repro.cluster.ring.HashRing`, one lazy
:class:`~repro.cluster.protocol.Connection` per shard node, and a catalog of
``name -> (fingerprint, kind)`` registrations.  Every kernel is routed by the
same content fingerprint that keys the factorization caches
(:func:`~repro.service.registry.kernel_fingerprint`), so the node that owns a
kernel's traffic is exactly the node holding its warm eigendecompositions.

Replication factor ``R`` registers each kernel on the first ``R`` distinct
ring owners; reads (sample/drain/warm) go primary-first and **fail over** to
the next replica when a node is unreachable — and because node-side sampling
is seed-deterministic, a failover returns the byte-identical sample the
primary would have produced.

:class:`ClusterSession` is the drop-in ``SamplerSession``-shaped handle
:func:`repro.serve_cluster` returns: the same ``sample / warm / close`` (and
``submit / drain``) surface, backed by the ring instead of a local registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cluster.protocol import (ClusterError, Connection, NodeUnavailable,
                                    attach_trace)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.utils.fingerprint import kernel_fingerprint
from repro.utils.rng import SeedLike, substream_seed

__all__ = ["ClusterClient", "ClusterSession", "RebalanceReport"]


@dataclass
class _CatalogEntry:
    name: str
    fingerprint: str
    kind: str
    n: int
    #: placement-stable routing identity: the *base* of the kernel's update
    #: chain (equal to ``fingerprint`` until the first incremental update).
    #: Routing by it keeps a mutating kernel on its owners — updates ship
    #: deltas instead of triggering ring moves.
    route: str = ""
    #: how many incremental updates the chain has absorbed
    epoch: int = 0

    def __post_init__(self) -> None:
        if not self.route:
            self.route = self.fingerprint


@dataclass
class RebalanceReport:
    """What a ring-membership change actually moved."""

    #: fingerprints whose owner set gained at least one node
    moved: int
    #: registered fingerprints at the time of the change
    total: int
    #: fingerprints that could not be copied (every previous owner down)
    lost: Tuple[str, ...] = ()

    @property
    def moved_fraction(self) -> float:
        return self.moved / self.total if self.total else 0.0


def _wire_seed(seed: SeedLike) -> object:
    """Validate that ``seed`` can cross the wire reproducibly."""
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cluster sessions need a re-derivable seed (int or SeedSequence); "
            "a Generator's state cannot be shipped to a shard node"
        )
    return seed


class ClusterClient:
    """Routing client over a set of shard-node addresses.

    ``addresses`` maps node id to ``(host, port)``; the ring is derived from
    the ids (or injected for tests).  All methods are thread-safe.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_connections", "_catalog", "failovers")}

    def __init__(self, addresses: Dict[str, Tuple[str, int]], *,
                 replication: int = 1, ring: Optional[HashRing] = None,
                 vnodes: int = DEFAULT_VNODES, timeout: float = 30.0):
        if replication < 1:
            raise ValueError(f"replication must be positive, got {replication}")
        self.addresses = {str(node): (host, int(port))
                          for node, (host, port) in addresses.items()}
        self.replication = int(replication)
        self.timeout = float(timeout)
        self.ring = ring if ring is not None else HashRing(self.addresses, vnodes=vnodes)
        self._lock = threading.RLock()
        self._connections: Dict[str, Connection] = {}
        self._catalog: Dict[str, _CatalogEntry] = {}
        self.failovers = 0

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self, node_id: str) -> Connection:
        with self._lock:
            connection = self._connections.get(node_id)
            if connection is None:
                address = self.addresses.get(node_id)
                if address is None:
                    raise ClusterError(f"no address for node {node_id!r}")
                connection = Connection(address, timeout=self.timeout)
                self._connections[node_id] = connection
            return connection

    def call_node(self, node_id: str, request: dict):
        """One request to one specific node (no failover).

        The active trace context (if any) rides the frame as its optional
        ``trace`` field so the node can open server-side child spans.
        """
        request = attach_trace(request, obs.current_context())
        return self._connection(node_id).request(request)

    def owners(self, fingerprint: str) -> Tuple[str, ...]:
        """The replica set for ``fingerprint``, primary first."""
        return self.ring.nodes_for(fingerprint, self.replication)

    def call(self, fingerprint: str, request: dict):
        """Routed request with replica failover.

        Unreachable owners (and replicas missing the kernel, e.g. mid-
        rebalance) are skipped in ring order; the first answer wins.  Every
        cluster op is idempotent/deterministic, so a retry on the next
        replica can never produce a different outcome than the primary —
        including byte-identical fixed-seed samples.
        """
        op = request.get("op", "call") if isinstance(request, dict) else "call"
        last_error: Optional[BaseException] = None
        for position, node_id in enumerate(self.owners(fingerprint)):
            # one wire span per attempt: a failover leaves its failed hop in
            # the tree (outcome="failover") next to the replica that answered
            wire_span = obs.start_span(f"rpc-{op}", category="wire",
                                       node=node_id, attempt=position)
            try:
                with obs.activate(wire_span.context if wire_span is not None
                                  else None):
                    value = self.call_node(node_id, request)
            except (NodeUnavailable, KeyError) as exc:
                # KeyError: the replica exists but never received this kernel
                # (a join raced the rebalance) — read through to the next one
                obs.end_span(wire_span, outcome="failover",
                             error=type(exc).__name__)
                last_error = exc
                if position + 1 < len(self.owners(fingerprint)):
                    with self._lock:
                        self.failovers += 1
                    obs.record_failover(fingerprint)
            except BaseException as exc:  # genuine remote error: no failover
                obs.end_span(wire_span, outcome="error",
                             error=type(exc).__name__)
                raise
            else:
                obs.end_span(wire_span, outcome="ok")
                return value
        if isinstance(last_error, KeyError):
            raise last_error
        raise ClusterError(
            f"all owners of {fingerprint[:12]} are unreachable"
        ) from last_error

    # ------------------------------------------------------------------ #
    # registration & catalog
    # ------------------------------------------------------------------ #
    def register(self, matrix: np.ndarray, *, name: Optional[str] = None,
                 kind: str = "symmetric",
                 parts: Optional[Sequence[Sequence[int]]] = None,
                 counts: Optional[Sequence[int]] = None,
                 warm: bool = False, validate: bool = True) -> _CatalogEntry:
        """Register a kernel on every ring owner of its content fingerprint.

        The fingerprint is computed client-side (it decides *where* to
        register) with the identical derivation the node's registry uses;
        registration succeeds if at least one owner accepted — down replicas
        catch up on the next rebalance.  A
        :class:`~repro.distributions.lowrank.LowRankKernel` registers its
        ``n x k`` factor under ``kind="lowrank"`` — only ``n·k`` floats cross
        the wire, and the owning shard caches ``k``-sized artifacts.
        """
        from repro.distributions.lowrank import LowRankKernel

        if isinstance(matrix, LowRankKernel):
            if kind == "symmetric":
                kind = "lowrank"
            if kind != "lowrank":
                raise ClusterError(
                    f"a LowRankKernel registers as kind='lowrank', not {kind!r}")
            matrix = matrix.factor
        matrix = np.ascontiguousarray(matrix, dtype=float) if kind == "lowrank" \
            else np.asarray(matrix, dtype=float)
        fingerprint = kernel_fingerprint(matrix, kind=kind, parts=parts, counts=counts)
        if name is None:
            name = f"kernel-{fingerprint[:12]}"
        request = {"op": "register", "name": name, "matrix": matrix, "kind": kind,
                   "parts": parts, "counts": counts, "warm": warm,
                   "validate": validate}
        accepted = 0
        last_error: Optional[BaseException] = None
        for node_id in self.owners(fingerprint):
            try:
                info = self.call_node(node_id, request)
            except NodeUnavailable as exc:
                last_error = exc
                continue
            if info["fingerprint"] != fingerprint:  # pragma: no cover - contract guard
                raise ClusterError(
                    f"node {node_id} derived fingerprint {info['fingerprint'][:12]} "
                    f"for a kernel routed by {fingerprint[:12]}"
                )
            accepted += 1
        if not accepted:
            raise ClusterError(
                f"no owner of {fingerprint[:12]} is reachable"
            ) from last_error
        entry = _CatalogEntry(name=name, fingerprint=fingerprint, kind=kind,
                              n=matrix.shape[0])
        with self._lock:
            self._catalog[name] = entry
        return entry

    def lookup(self, name: str) -> _CatalogEntry:
        """Catalog entry for ``name``; asks the nodes when not cached locally."""
        with self._lock:
            entry = self._catalog.get(name)
        if entry is not None:
            return entry
        for node_id in self.ring.nodes:
            try:
                catalog = self.call_node(node_id, {"op": "catalog"})
            except NodeUnavailable:
                continue
            info = catalog.get(name)
            if info is not None:
                entry = _CatalogEntry(name=name, fingerprint=info["fingerprint"],
                                      kind=info["kind"], n=info["n"],
                                      route=info.get("base_fingerprint")
                                      or info["fingerprint"],
                                      epoch=int(info.get("epoch", 0)))
                with self._lock:
                    self._catalog[name] = entry
                return entry
        raise KeyError(f"no kernel registered under {name!r} on any reachable node")

    def catalog(self) -> Dict[str, str]:
        """``name -> fingerprint`` of everything this client has registered."""
        with self._lock:
            return {name: entry.fingerprint for name, entry in self._catalog.items()}

    # ------------------------------------------------------------------ #
    # serving surface
    # ------------------------------------------------------------------ #
    def session(self, name: str, *, scheduler_seed: SeedLike = 0) -> "ClusterSession":
        """Open a :class:`ClusterSession` (the ``SamplerSession`` facade)."""
        return ClusterSession(self, self.lookup(name), scheduler_seed=scheduler_seed)

    def sample(self, name: str, k: Optional[int] = None, *, seed: SeedLike = None,
               method: Optional[str] = None, delta: float = 1e-2):
        entry = self.lookup(name)
        return self.call(entry.route, {
            "op": "sample", "name": name, "k": k, "seed": _wire_seed(seed),
            "method": method, "delta": delta,
        })

    def update(self, name: str, update, *, refactor: object = "auto") -> _CatalogEntry:
        """Apply an incremental kernel update on every owner — shipping only
        the delta (``update.delta_nbytes`` bytes of arrays), never the
        mutated matrix.

        The client derives the successor fingerprint from the chain
        (:meth:`~repro.linalg.updates.KernelUpdate.chained_fingerprint`) and
        *verifies* each accepting owner reports exactly that fingerprint — a
        replica whose chain diverged (e.g. re-registered cold by a rebalance,
        which collapses the chain to a content fingerprint; the documented
        limitation of mixing rebalances with in-flight updates) fails loudly
        instead of serving from a forked kernel.  Routing stays on the chain's
        *base* fingerprint, so updates never move a kernel across the ring.
        """
        entry = self.lookup(name)
        expected = update.chained_fingerprint(entry.fingerprint)
        request = {"op": "update", "name": name, "update": update,
                   "prev": entry.fingerprint, "refactor": refactor}
        obs.record_update_delta(update.delta_nbytes)
        accepted = 0
        new_n = entry.n
        last_error: Optional[BaseException] = None
        for node_id in self.owners(entry.route):
            try:
                info = self.call_node(node_id, request)
            except (NodeUnavailable, KeyError) as exc:
                # unreachable, or a replica that never received this kernel
                last_error = exc
                continue
            if info["fingerprint"] != expected:
                raise ClusterError(
                    f"node {node_id} applied an update to {name!r} but landed on "
                    f"chain fingerprint {info['fingerprint'][:12]}, client "
                    f"derived {expected[:12]} — replica chain diverged"
                )
            accepted += 1
            new_n = int(info["n"])
        if not accepted:
            raise ClusterError(
                f"no owner of {name!r} accepted the update"
            ) from last_error
        new_entry = _CatalogEntry(name=name, fingerprint=expected, kind=entry.kind,
                                  n=new_n, route=entry.route,
                                  epoch=entry.epoch + 1)
        with self._lock:
            self._catalog[name] = new_entry
        return new_entry

    def warm(self, name: str) -> int:
        """Warm the kernel on every reachable owner; returns how many warmed."""
        entry = self.lookup(name)
        warmed = 0
        last_error: Optional[BaseException] = None
        for node_id in self.owners(entry.route):
            try:
                self.call_node(node_id, {"op": "warm", "name": name})
                warmed += 1
            except (NodeUnavailable, KeyError) as exc:
                last_error = exc
        if not warmed:
            raise ClusterError(f"no owner of {name!r} is reachable") from last_error
        return warmed

    # ------------------------------------------------------------------ #
    # membership & rebalance
    # ------------------------------------------------------------------ #
    def _catalog_by_fingerprint_locked(self) -> Dict[str, List[_CatalogEntry]]:
        """Registered entries grouped by content (several names may share one
        fingerprint; every name must survive a move, not just one of them).
        Caller holds ``self._lock`` (the ``_locked`` suffix contract)."""
        grouped: Dict[str, List[_CatalogEntry]] = {}
        for entry in self._catalog.values():
            grouped.setdefault(entry.route, []).append(entry)
        return grouped

    def add_node(self, node_id: str, address: Tuple[str, int]) -> RebalanceReport:
        """Join ``node_id`` and move only the fingerprints it now owns.

        Consistent hashing guarantees the moved set is ≈ ``K/N`` of the
        ``K`` registered fingerprints (``≈ R·K/N`` with replication) — the
        report's ``moved``/``moved_fraction`` make that checkable.
        """
        with self._lock:
            grouped = self._catalog_by_fingerprint_locked()
            before = self.ring.ownership(grouped, self.replication)
            self.addresses[str(node_id)] = (address[0], int(address[1]))
            self.ring.add_node(node_id)
            after = self.ring.ownership(grouped, self.replication)
        return self._move(grouped, before, after)

    def remove_node(self, node_id: str, *, contact: bool = True) -> RebalanceReport:
        """Leave ``node_id`` (planned drain): re-home its kernels first.

        The departing node stays addressable until the move completes — it
        may be the only copy of some kernels (R=1), in which case it is the
        export source.  ``contact=False`` (what :meth:`forget_node` passes
        for a node known to be dead) never opens a connection to it, so a
        black-holed host cannot stall the move on per-kernel timeouts.
        """
        with self._lock:
            if str(node_id) in self.ring and len(self.ring) == 1:
                raise ClusterError(
                    f"cannot remove {node_id!r}: it is the last ring node, "
                    "there is nowhere to re-home its kernels"
                )
            grouped = self._catalog_by_fingerprint_locked()
            before = self.ring.ownership(grouped, self.replication)
            self.ring.remove_node(node_id)
            after = self.ring.ownership(grouped, self.replication)
        report = self._move(grouped, before, after, drained=str(node_id),
                            contact_drained=contact)
        with self._lock:
            connection = self._connections.pop(str(node_id), None)
            self.addresses.pop(str(node_id), None)
        if connection is not None:
            connection.close()
        return report

    def forget_node(self, node_id: str) -> RebalanceReport:
        """Remove a *dead* node from the ring (no drain attempt).

        Unlike :meth:`remove_node` this never contacts the departing node —
        kernels are re-copied onto their new owners from surviving replicas
        (with R=1 the dead node held the only copy, so those fingerprints
        are reported as ``lost`` instead of stalling on its timeouts).
        """
        return self.remove_node(node_id, contact=False)

    def _move(self, grouped: Dict[str, List[_CatalogEntry]],
              before: Dict[str, Tuple[str, ...]],
              after: Dict[str, Tuple[str, ...]],
              drained: Optional[str] = None,
              contact_drained: bool = True) -> RebalanceReport:
        moved = 0
        lost: List[str] = []
        for fingerprint, owners in after.items():
            previous = before.get(fingerprint, ())
            new_owners = [node for node in owners if node not in previous]
            if not new_owners:
                continue
            moved += 1
            entries = grouped[fingerprint]
            payload = self._export(entries, previous,
                                   drained if contact_drained else None,
                                   avoid=None if contact_drained else drained)
            if payload is None:
                lost.append(fingerprint)
                continue
            # equal-content names share one matrix but are registered (and
            # looked up) independently: every alias must reach the new owners
            for entry in entries:
                request = {"op": "register", "name": entry.name,
                           "matrix": payload["matrix"], "kind": payload["kind"],
                           "parts": payload["parts"], "counts": payload["counts"],
                           # the exporter validated at original registration time
                           "warm": False, "validate": False}
                for node_id in new_owners:
                    try:
                        self.call_node(node_id, request)
                    except NodeUnavailable:
                        continue  # it will read-through repair on first use
        return RebalanceReport(moved=moved, total=len(after), lost=tuple(lost))

    def _export(self, entries: List[_CatalogEntry], previous: Tuple[str, ...],
                drained: Optional[str], avoid: Optional[str] = None) -> Optional[dict]:
        sources = [node for node in previous if node != drained and node != avoid]
        if drained is not None and drained in previous:
            sources.append(drained)  # last resort: the draining node itself
        for node_id in sources:
            for entry in entries:
                try:
                    return self.call_node(node_id, {"op": "export", "name": entry.name})
                except (ClusterError, KeyError):  # unreachable, dropped, or missing
                    continue
        return None

    # ------------------------------------------------------------------ #
    # diagnostics & lifecycle
    # ------------------------------------------------------------------ #
    def cluster_info(self) -> Dict[str, object]:
        """Per-node stats plus a cache rollup across the whole ring.

        Transport (the per-node ``stats`` calls) happens here; the schema
        and the arithmetic live in the shared
        :func:`repro.obs.rollup.cluster_rollup` helper — the one documented
        stable schema every cluster front end reports.
        """
        nodes: Dict[str, Dict[str, object]] = {}
        for node_id in self.ring.nodes:
            try:
                nodes[node_id] = self.call_node(node_id, {"op": "stats"})
            except NodeUnavailable as exc:
                nodes[node_id] = {"unreachable": str(exc)}
        with self._lock:  # one consistent snapshot of catalog size + failovers
            registered = len(self._catalog)
            failovers = self.failovers
        return obs.cluster_rollup(
            nodes, ring_nodes=self.ring.nodes, vnodes=self.ring.vnodes,
            replication=self.replication, registered=registered,
            failovers=failovers)

    def failover_count(self) -> int:
        """Locked read of the replica-failover counter (for stats builders)."""
        with self._lock:
            return self.failovers

    def close(self) -> None:
        with self._lock:
            connections, self._connections = list(self._connections.values()), {}
        for connection in connections:
            connection.close()


class ClusterSession:
    """``SamplerSession``-shaped facade over one cluster-registered kernel.

    Drop-in for the single-node session's serving surface — ``sample``,
    ``warm``, ``close`` (and ``submit``/``drain`` for fused batches) with the
    same defaults and the same fixed-seed samples; the differences are the
    wire constraints (seeds must be re-derivable, sampler ``config`` objects
    and per-call ``backend`` overrides do not ship) and that ``close`` only
    releases client state (shard registrations are durable by design).
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_entry", "_queue", "_pending_spans",
                             "_submitted", "_closed", "samples_served")}

    def __init__(self, client: ClusterClient, entry: _CatalogEntry, *,
                 scheduler_seed: SeedLike = 0, owned_cluster=None):
        self._client = client
        self._entry = entry
        self._root_seed = scheduler_seed if scheduler_seed is not None else 0
        self._owned_cluster = owned_cluster
        self._lock = threading.Lock()
        self._queue: List[dict] = []
        #: one ``(span-or-None, submitted_at)`` per queued request, index-
        #: aligned with ``_queue`` (swapped/restored together by drain)
        self._pending_spans: List[Tuple[Optional[obs.Span], float]] = []
        self._submitted = 0
        self._closed = False
        self.samples_served = 0

    # ------------------------------------------------------------------ #
    @property
    def entry(self) -> _CatalogEntry:
        """Snapshot of the served catalog entry (swapped atomically by updates)."""
        with self._lock:
            return self._entry

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def kind(self) -> str:
        return self.entry.kind

    @property
    def n(self) -> int:
        return self.entry.n

    @property
    def fingerprint(self) -> str:
        return self.entry.fingerprint

    @property
    def epoch(self) -> int:
        """How many incremental updates this kernel has absorbed."""
        return self.entry.epoch

    @property
    def owners(self) -> Tuple[str, ...]:
        """Current replica set (primary first) — changes with the ring."""
        return self._client.owners(self.entry.route)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _check_open(self) -> None:
        with self._lock:
            closed = self._closed
        if closed:
            raise RuntimeError(f"cluster session on kernel {self.name!r} is closed")

    # ------------------------------------------------------------------ #
    def sample(self, k: Optional[int] = None, *, seed: SeedLike = None,
               method: Optional[str] = None, delta: float = 1e-2,
               config=None, backend=None, tracker=None):
        """One draw, routed to the kernel's primary (replicas on failure).

        Fixed-seed draws are byte-identical to ``repro.serve(...)`` on a
        single node: the shard runs the very same session/sampler stack.
        """
        self._check_open()
        if config is not None:
            raise ValueError(
                "sampler config objects hold callables and do not ship over "
                "the cluster wire; tune delta= instead"
            )
        if backend is not None or tracker is not None:
            raise ValueError(
                "backend/tracker are node-side concerns in a cluster: set the "
                "backend on the ShardNode, read reports from the result"
            )
        with obs.request("cluster-sample", family=self.kind, kernel=self.name,
                         method=method, k=-1 if k is None else int(k)):
            result = self._client.call(self.entry.route, {
                "op": "sample", "name": self.name, "k": k,
                "seed": _wire_seed(seed), "method": method, "delta": delta,
            })
        with self._lock:
            self.samples_served += 1
        return result

    def warm(self) -> "ClusterSession":
        """Precompute factorization artifacts on every reachable owner."""
        self._check_open()
        self._client.warm(self.name)
        return self

    # ------------------------------------------------------------------ #
    # streaming kernels: ship deltas, never the mutated matrix
    # ------------------------------------------------------------------ #
    def update(self, u: np.ndarray, v: Optional[np.ndarray] = None, *,
               weight: float = 1.0, refactor: object = "auto") -> _CatalogEntry:
        """Rank-1 update ``L += weight * u v^T`` on every owning shard.

        Only the update vectors cross the wire (O(n) bytes, not the O(n²)
        matrix); each owner patches its cached factorization via
        :meth:`~repro.service.registry.KernelRegistry.apply_update` and its
        live session adopts the new epoch.  Same contract as
        :meth:`repro.service.session.SamplerSession.update`.
        """
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.rank_one(u, v, weight=weight),
                                  refactor)

    def append_items(self, rows: np.ndarray, *,
                     refactor: object = "auto") -> _CatalogEntry:
        """Grow a low-rank kernel's ground set on every owning shard."""
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.append_rows(rows), refactor)

    def delete_items(self, indices, *, refactor: object = "auto") -> _CatalogEntry:
        """Shrink a low-rank kernel's ground set on every owning shard."""
        from repro.linalg.updates import KernelUpdate

        return self._apply_update(KernelUpdate.delete_rows(indices), refactor)

    def _apply_update(self, update, refactor: object) -> _CatalogEntry:
        self._check_open()
        entry = self._client.update(self.name, update, refactor=refactor)
        with self._lock:
            if entry.epoch >= self._entry.epoch:
                self._entry = entry
        return entry

    # ------------------------------------------------------------------ #
    # fused batches: queue client-side, fuse node-side
    # ------------------------------------------------------------------ #
    def submit(self, k: Optional[int] = None, *, seed: SeedLike = None,
               method: str = "parallel", **kwargs) -> int:
        """Queue one draw for the next :meth:`drain`; returns its index.

        Unseeded requests get the same deterministic substream a local
        :class:`~repro.service.scheduler.RoundScheduler` would assign
        (:func:`~repro.utils.rng.substream_seed` — the shared derivation),
        shipped as a picklable ``SeedSequence`` — so a cluster drain is
        byte-identical to a single-node ``session.submit()/drain()`` with
        the same root seed.

        Unshippable arguments are rejected *here*, exactly as :meth:`sample`
        rejects them — accepting them would poison the queue and fail every
        later :meth:`drain` (which re-queues on error by design).
        """
        self._check_open()
        for rejected in ("config", "backend", "tracker"):
            if kwargs.get(rejected) is not None:
                raise ValueError(
                    f"{rejected}= does not ship over the cluster wire; "
                    "see ClusterSession.sample for the node-side alternatives"
                )
        with self._lock:
            index = self._submitted
            self._submitted += 1
            if seed is None:
                seed = substream_seed(self._root_seed, index)
            queued = {"k": k, "seed": _wire_seed(seed), "method": method,
                      "kwargs": dict(kwargs)}
            # each request is born as a trace root here; its context ships
            # inside the queued dict so the node's drain scheduler parents
            # the server-side span tree under it (read _entry directly:
            # the kind/name properties re-acquire this non-reentrant lock)
            span = obs.start_span("cluster-request", category="request",
                                  family=self._entry.kind,
                                  kernel=self._entry.name,
                                  method=method, index=index)
            if span is not None:
                queued["trace"] = span.context.as_wire()
            self._queue.append(queued)
            self._pending_spans.append((span, time.perf_counter()))
            return index

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def drain(self) -> List[object]:
        """Execute the queued draws as one node-side fused batch.

        Tracing: the drain itself runs under one ``cluster-drain`` span
        **linked** to every queued request's root span (the wire hop and any
        failover land under it); each request's own span ends here with its
        queue wait, and its end-to-end latency feeds the per-family SLO
        stream — one observation per request, exactly like single-node
        scheduling.
        """
        self._check_open()
        with self._lock:
            queue, self._queue = self._queue, []
            pending, self._pending_spans = self._pending_spans, []
        if not queue:
            return []
        started = time.perf_counter()
        links = [span.context for span, _ in pending if span is not None]
        try:
            with obs.span("cluster-drain", category="drain",
                          links=links or None, requests=len(queue)):
                results = self._client.call(self.entry.route, {
                    "op": "drain", "name": self.name, "requests": queue,
                    "seed": self._root_seed if not isinstance(
                        self._root_seed, np.random.SeedSequence) else 0,
                })
        except BaseException:
            with self._lock:  # failed drains leave the queue (and spans) intact
                self._queue = queue + self._queue
                self._pending_spans = pending + self._pending_spans
            raise
        finished = time.perf_counter()
        family = self.kind
        for span, submitted_at in pending:
            obs.record_request_latency(family, finished - submitted_at)
            obs.end_request_span(span, end=finished,
                                 queue_wait=started - submitted_at)
        with self._lock:
            self.samples_served += len(results)
        return results

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> Dict[str, object]:
        with self._lock:
            samples_served = self.samples_served
        return {
            "kernel": self.name,
            "kind": self.kind,
            "n": self.n,
            "owners": list(self.owners),
            "samples_served": samples_served,
            "failovers": self._client.failover_count(),
        }

    def close(self) -> None:
        """Close the facade (idempotent).

        Shard-side registrations are durable; only when this session owns a
        private auto-started cluster (``repro.serve_cluster(matrix)`` with no
        ``cluster=``) is that cluster shut down with it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned, self._owned_cluster = self._owned_cluster, None
        if owned is not None:
            owned.shutdown()

    def __enter__(self) -> "ClusterSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
