"""An in-process cluster: N shard nodes, one ring, one client.

:class:`LocalCluster` is the deployment used by tests, benchmarks, CI and
the single-machine scale-up story: every :class:`~repro.cluster.node.ShardNode`
runs as a thread serving a loopback socket, so the full wire protocol,
replication, failover and rebalance paths are exercised end to end without
any process orchestration.  A multi-host deployment replaces only this file:
start ``ShardNode``s wherever you like and hand their addresses to a
:class:`~repro.cluster.client.ClusterClient`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro import obs
from repro.cluster.client import ClusterClient, RebalanceReport
from repro.cluster.node import ShardNode
from repro.cluster.ring import DEFAULT_VNODES
from repro.engine import BackendLike

__all__ = ["LocalCluster"]


class LocalCluster:
    """N in-process shard nodes behind one consistent-hash ring.

    Parameters
    ----------
    nodes:
        Initial node count (ids ``shard-0 .. shard-{N-1}``).
    replication:
        Replica factor R: every kernel registers on the first R distinct
        ring owners, and reads fail over along that set.
    vnodes:
        Virtual nodes per shard (ring smoothness vs membership-change cost).
    backend / cache_ttl:
        Forwarded to every node (execution backend for node-side sampling;
        idle TTL for node factorization caches).
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("nodes", "_next_index")}

    def __init__(self, nodes: int = 3, *, replication: int = 1,
                 vnodes: int = DEFAULT_VNODES, backend: BackendLike = None,
                 cache_ttl: Optional[float] = None, node_prefix: str = "shard"):
        if nodes < 1:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self._lock = threading.RLock()
        self._backend = backend
        self._cache_ttl = cache_ttl
        self._prefix = node_prefix
        self._next_index = 0
        self.nodes: Dict[str, ShardNode] = {}
        addresses: Dict[str, Tuple[str, int]] = {}
        for _ in range(int(nodes)):
            node = self._spawn()
            addresses[node.node_id] = node.start()
            self.nodes[node.node_id] = node
        self._client = ClusterClient(addresses, replication=replication,
                                     vnodes=vnodes)

    def _spawn(self, node_id: Optional[str] = None) -> ShardNode:
        with self._lock:
            if node_id is None:
                node_id = f"{self._prefix}-{self._next_index}"
                self._next_index += 1
            return ShardNode(node_id, backend=self._backend,
                             cache_ttl=self._cache_ttl)

    # ------------------------------------------------------------------ #
    def client(self) -> ClusterClient:
        """The shared routing client (one per cluster; thread-safe)."""
        return self._client

    @property
    def replication(self) -> int:
        return self._client.replication

    def node(self, node_id: str) -> ShardNode:
        # Locked lookup: a concurrent add_node/forget_node mutates the dict,
        # and an unlocked read could observe it mid-rehash.
        with self._lock:
            return self.nodes[str(node_id)]

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: Optional[str] = None) -> RebalanceReport:
        """Start a new shard, join the ring, and rebalance onto it.

        Only the fingerprints whose owner set gained the new node move
        (``≈ K/N`` of ``K`` registered kernels — the consistent-hashing
        guarantee the returned report lets callers verify).
        """
        node = self._spawn(node_id)
        address = node.start()
        with self._lock:
            self.nodes[node.node_id] = node
        return self._client.add_node(node.node_id, address)

    def remove_node(self, node_id: str) -> RebalanceReport:
        """Planned drain: re-home the node's kernels, then stop it."""
        report = self._client.remove_node(node_id)
        with self._lock:
            node = self.nodes.pop(str(node_id), None)
        if node is not None:
            node.stop()
        return report

    def kill_node(self, node_id: str) -> ShardNode:
        """Abrupt node death: stop serving *without* touching the ring.

        Traffic for its kernels fails over to replicas; call
        :meth:`forget_node` (or :meth:`remove_node` for a planned drain)
        once the operator gives up on it.
        """
        with self._lock:
            node = self.nodes[str(node_id)]
        # stop() outside the cluster lock: it joins the node's listener
        # thread, and membership operations must not stall behind that
        node.stop()
        obs.tracer().event("kill_node", node=str(node_id))
        return node

    def forget_node(self, node_id: str) -> RebalanceReport:
        """Drop a dead node: rebalance from surviving replicas, no drain."""
        report = self._client.forget_node(node_id)
        with self._lock:
            self.nodes.pop(str(node_id), None)
        return report

    # ------------------------------------------------------------------ #
    def cluster_info(self) -> Dict[str, object]:
        """Ring-wide stats rollup in the one stable schema documented by
        :mod:`repro.obs.rollup` (built via :meth:`ClusterClient.cluster_info`
        — both front ends share the same :func:`~repro.obs.rollup.cluster_rollup`
        helper, so the dicts can never drift apart)."""
        return self._client.cluster_info()

    def shutdown(self) -> None:
        """Stop every node and drop client connections (idempotent)."""
        with self._lock:
            nodes, self.nodes = list(self.nodes.values()), {}
        self._client.close()
        for node in nodes:
            node.stop()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __len__(self) -> int:
        with self._lock:
            return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LocalCluster(nodes={len(self)}, "
                f"replication={self._client.replication})")
