"""Consistent hashing: content fingerprints → shard nodes.

The cluster layer routes every kernel by the same SHA-256 content
fingerprint the factorization cache is keyed on (:mod:`repro.utils.fingerprint`),
so "which node owns this kernel's artifacts" is a pure function of kernel
content and ring membership — no directory service, no per-key state.

:class:`HashRing` is the classic virtual-node construction: every node
projects ``vnodes`` points onto a 64-bit circle (SHA-256 of
``"{node_id}#{replica_index}"``), a key lands at the first point clockwise
from its own hash, and replication walks further clockwise collecting
*distinct* nodes.  Two properties matter for the cluster:

* **determinism** — positions depend only on node ids, so any client (or a
  re-constructed ring after a restart) computes the identical mapping, in any
  insertion order;
* **minimal movement** — adding one node to an ``N``-node ring re-assigns
  only the arcs the new node's points capture, ``≈ K/N`` of ``K`` keys in
  expectation (the rebalance bound ``benchmarks/bench_cluster.py`` gates on).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing"]

#: default virtual nodes per physical node; 64 keeps the arc-length spread
#: tight enough that a 3→4 node rebalance stays near the K/N expectation
DEFAULT_VNODES = 64


def _position(token: str) -> int:
    """64-bit ring position of an arbitrary string token."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over string node ids with virtual nodes.

    Not thread-safe by itself — the cluster client guards membership changes
    with its own lock; lookups on a stable ring are safe to share.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        #: sorted (position, node_id) points; ties broken by node id so the
        #: mapping is deterministic even across (astronomically unlikely)
        #: position collisions
        self._points: List[Tuple[int, str]] = []
        for node_id in nodes:
            self.add_node(node_id)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: str) -> None:
        """Project ``node_id``'s virtual points onto the ring (idempotent)."""
        node_id = str(node_id)
        if node_id in self._nodes:
            return
        positions = tuple(_position(f"{node_id}#{i}") for i in range(self.vnodes))
        self._nodes[node_id] = positions
        for position in positions:
            bisect.insort(self._points, (position, node_id))

    def remove_node(self, node_id: str) -> None:
        """Remove ``node_id``'s points; unknown ids are a no-op."""
        node_id = str(node_id)
        if self._nodes.pop(node_id, None) is None:
            return
        self._points = [point for point in self._points if point[1] != node_id]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Member node ids, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return str(node_id) in self._nodes

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def nodes_for(self, key: str, count: int = 1) -> Tuple[str, ...]:
        """The ``count`` distinct owners of ``key``, primary first.

        Walks clockwise from the key's position collecting distinct node
        ids; asking for more replicas than there are nodes returns every
        node (primary-ordered), so ``replication > len(ring)`` degrades
        gracefully instead of failing.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if not self._points:
            raise RuntimeError("hash ring has no nodes")
        owners: List[str] = []
        start = bisect.bisect_right(self._points, (_position(str(key)), "￿"))
        for offset in range(len(self._points)):
            node_id = self._points[(start + offset) % len(self._points)][1]
            if node_id not in owners:
                owners.append(node_id)
                if len(owners) == count or len(owners) == len(self._nodes):
                    break
        return tuple(owners)

    def node_for(self, key: str) -> str:
        """The primary owner of ``key``."""
        return self.nodes_for(key, 1)[0]

    def ownership(self, keys: Sequence[str], count: int = 1) -> Dict[str, Tuple[str, ...]]:
        """``key -> owners`` for many keys (rebalance planning helper)."""
        return {str(key): self.nodes_for(key, count) for key in keys}

    @staticmethod
    def moved_keys(before: Dict[str, Tuple[str, ...]],
                   after: Dict[str, Tuple[str, ...]]) -> List[str]:
        """Keys whose owner set gained at least one node between two maps.

        This is the set that requires data movement on a membership change —
        dropping an owner is free (the artifacts just become garbage), only
        a *new* owner needs the kernel copied in.
        """
        moved = []
        for key, owners in after.items():
            previous = set(before.get(key, ()))
            if any(node not in previous for node in owners):
                moved.append(key)
        return moved
