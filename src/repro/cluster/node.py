"""Shard nodes: headless serving processes behind the hash ring.

A :class:`ShardNode` owns a *private* :class:`~repro.service.registry.KernelRegistry`
and :class:`~repro.service.cache.FactorizationCache` — the same stack
``repro.serve`` drives locally, hosted without any local sessions — and
answers a small dict-op protocol over length-prefixed pickle frames
(:mod:`repro.cluster.protocol`):

======== =============================================================
op       effect
======== =============================================================
ping     liveness probe
register register a kernel (validation + fingerprint happen node-side)
warm     precompute a kernel's factorization artifacts
sample   one draw through a node-side :class:`SamplerSession`
drain    a batch of draws fused node-side by a :class:`RoundScheduler`
update   apply an incremental kernel delta (rank-1 / row append / delete)
         to the node's replica — patching cached artifacts in place
stats    node census: sessions served + ``registry_info()`` rollup
catalog  ``name -> (fingerprint, kind)`` of everything registered
export   full kernel payload (matrix + structure) for rebalance moves
unregister / flush / shutdown  lifecycle & maintenance
======== =============================================================

Because sampling happens entirely node-side with the ordinary service stack,
a fixed-seed draw on a shard is byte-identical to the same draw through a
single-process ``repro.serve`` session — the cluster layer changes *where*
preprocessing artifacts live, never what is sampled.  Nodes here run as
threads serving loopback sockets (one per test/benchmark process); the
protocol is process-agnostic, so the same class fronts a real multi-host
deployment by binding a routable address.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.cluster.protocol import ClusterError, NodeUnavailable, recv_frame, send_frame
from repro.engine import BackendLike
from repro.service.cache import FactorizationCache
from repro.service.registry import KernelRegistry
from repro.service.session import SamplerSession

__all__ = ["ShardNode"]


class ShardNode:
    """One shard: a private registry/cache pair behind a socket server.

    Parameters
    ----------
    node_id:
        Stable identifier; the ring hashes it, so it must survive restarts
        for placement to survive restarts.
    registry / cache:
        Injectable for tests; by default each node gets a fresh private
        :class:`KernelRegistry` over a fresh :class:`FactorizationCache`
        (optionally TTL'd via ``cache_ttl``).
    backend:
        Execution backend node-side sessions sample with (``None`` — the
        planner default).
    host / port:
        Bind address; port ``0`` picks an ephemeral port (reported by
        :meth:`start`).
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_sessions", "_connections", "_stopped",
                             "_listener", "requests_served")}

    def __init__(self, node_id: str, *, registry: Optional[KernelRegistry] = None,
                 cache: Optional[FactorizationCache] = None,
                 cache_ttl: Optional[float] = None,
                 backend: BackendLike = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.node_id = str(node_id)
        if registry is None:
            registry = KernelRegistry(cache if cache is not None
                                      else FactorizationCache(ttl=cache_ttl))
        self.registry = registry
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.address: Optional[Tuple[str, int]] = None
        self._lock = threading.RLock()
        self._sessions: Dict[str, SamplerSession] = {}
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._stopped = False
        self.requests_served = 0

    # ------------------------------------------------------------------ #
    # server lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Bind and serve in a daemon thread; returns the bound address."""
        with self._lock:
            if self._listener is not None:
                return self.address
            listener = socket.create_server((self.host, self.port))
            self._listener = listener
            self._stopped = False
            self.address = listener.getsockname()[:2]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, args=(listener,),
                name=f"repro-shard-{self.node_id}", daemon=True)
            self._accept_thread.start()
            return self.address

    def stop(self) -> None:
        """Stop serving *abruptly*: close the listener and every live
        connection (in-flight clients see :class:`NodeUnavailable` — exactly
        the node-death signal the cluster client's failover handles)."""
        with self._lock:
            self._stopped = True
            listener, self._listener = self._listener, None
            connections = list(self._connections)
            self._connections.clear()
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    @property
    def running(self) -> bool:
        with self._lock:
            return self._listener is not None

    def __enter__(self) -> "ShardNode":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _accept_loop(self, listener: socket.socket) -> None:
        # the listener is an argument, not re-read from self: a stop() racing
        # this thread's first instruction nulls self._listener, and accept()
        # on the captured (closed) socket raises the OSError handled below
        while True:
            try:
                conn, _peer = listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._lock:
                if self._stopped:
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name=f"repro-shard-{self.node_id}-conn",
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except (NodeUnavailable, ClusterError, OSError, EOFError,
                        pickle.UnpicklingError):
                    return
                reply = self._reply(request)
                try:
                    send_frame(conn, reply)
                except OSError:
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _reply(self, request: object) -> dict:
        try:
            value = self.handle(request)
            return {"ok": True, "value": value}
        except BaseException as exc:  # every remote failure must frame cleanly
            detail = "".join(traceback.format_exception_only(type(exc), exc)).strip()
            try:
                pickle.dumps(exc)
                shipped: Optional[BaseException] = exc
            except Exception:
                shipped = None  # unpicklable exception: message-only
            return {"ok": False, "error": shipped,
                    "message": f"{self.node_id}: {detail}"}

    # ------------------------------------------------------------------ #
    # op dispatch (also the in-process entry point: no sockets required)
    # ------------------------------------------------------------------ #
    def handle(self, request: object):
        """Execute one request dict and return its value (raises on error).

        Frames may carry an optional ``trace`` field (see
        :mod:`repro.cluster.protocol`): the node then runs the op under a
        server-side child span of the client's request, so the wire hop and
        node-side execution land in the same trace tree.
        """
        if not isinstance(request, dict) or "op" not in request:
            raise ClusterError(f"malformed request: {request!r}")
        args = dict(request)
        op = args.pop("op")
        trace_context = obs.context_from_wire(args.pop("trace", None))
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ClusterError(f"unknown op {op!r}")
        with self._lock:
            self.requests_served += 1
        started = time.perf_counter()
        try:
            with obs.span(f"node-{op}", category="node_op",
                          parent=trace_context, node=self.node_id):
                return handler(**args)
        finally:
            obs.record_cluster_op(op, time.perf_counter() - started)

    def _session(self, name: str) -> SamplerSession:
        with self._lock:
            session = self._sessions.get(name)
            if session is None or session.closed:
                session = SamplerSession(self.registry.get(name),
                                         self.registry.cache, backend=self.backend)
                self._sessions[name] = session
            return session

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def _op_ping(self):
        return {"node": self.node_id, "pong": True}

    def _op_register(self, name: str, matrix: np.ndarray, kind: str = "symmetric",
                     parts=None, counts=None, warm: bool = False,
                     validate: bool = True):
        entry = self.registry.register(name, matrix, kind=kind, parts=parts,
                                       counts=counts, validate=validate,
                                       overwrite=False, warm=warm)
        return {"name": entry.name, "fingerprint": entry.fingerprint,
                "base_fingerprint": entry.route_fingerprint,
                "epoch": entry.epoch,
                "kind": entry.kind, "n": entry.n, "node": self.node_id}

    def _op_update(self, name: str, update, prev: Optional[str] = None,
                   refactor: object = "auto"):
        """Apply one kernel delta to this node's replica.

        ``prev`` is the client's view of the current chain tip; a replica
        whose chain has diverged (e.g. re-registered after a rebalance that
        collapsed the chain) refuses the delta instead of silently forking.
        The node's live session for the kernel adopts the new epoch, so
        queued/fused draws pick it up exactly like a local session would.
        """
        entry = self.registry.apply_update(name, update, refactor=refactor,
                                           expect_fingerprint=prev)
        with self._lock:
            session = self._sessions.get(name)
        if session is not None and not session.closed:
            session.adopt_entry(entry)
        decision = entry.update_log[-1].decision if entry.update_log else "patched"
        return {"name": entry.name, "fingerprint": entry.fingerprint,
                "base_fingerprint": entry.route_fingerprint,
                "epoch": entry.epoch, "n": entry.n,
                "decision": decision, "node": self.node_id}

    def _op_unregister(self, name: str):
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is not None:
            session.close()
        return self.registry.unregister(name)

    def _op_warm(self, name: str):
        self._session(name).warm()
        return True

    def _op_sample(self, name: str, k=None, seed=None, method=None,
                   delta: float = 1e-2):
        return self._session(name).sample(k, seed=seed, method=method, delta=delta)

    def _op_drain(self, name: str, requests: List[dict], seed=0):
        """Fused execution of many draws: the cluster's batch-sampling op.

        A fresh :class:`~repro.service.scheduler.RoundScheduler` per call
        keeps request indices deterministic for the caller (the cluster
        session seeds every request explicitly, so the scheduler's own
        substream assignment is only a fallback).
        """
        from repro.service.scheduler import RoundScheduler

        session = self._session(name)
        scheduler = RoundScheduler(session, backend=self.backend, seed=seed)
        for request in requests:
            # each queued request may carry its submitter's trace context;
            # the drain threads re-activate it so node-side span trees hang
            # off the client's per-request spans
            scheduler.submit(request.get("k"), seed=request.get("seed"),
                             method=request.get("method", "parallel"),
                             trace=obs.context_from_wire(request.get("trace")),
                             **request.get("kwargs", {}))
        return scheduler.drain()

    def _op_catalog(self):
        with self._lock:
            names = self.registry.names()
        catalog = {}
        for name in names:
            try:
                entry = self.registry.get(name)
            except KeyError:  # pragma: no cover - concurrent unregister
                continue
            catalog[name] = {"fingerprint": entry.fingerprint, "kind": entry.kind,
                             "n": entry.n,
                             "base_fingerprint": entry.route_fingerprint,
                             "epoch": entry.epoch}
        return catalog

    def _op_export(self, name: str):
        """Ship a kernel's full definition (for rebalance data movement)."""
        entry = self.registry.get(name)
        return {"name": entry.name, "matrix": np.asarray(entry.matrix),
                "kind": entry.kind, "parts": entry.parts, "counts": entry.counts,
                "fingerprint": entry.fingerprint,
                "base_fingerprint": entry.route_fingerprint,
                "epoch": entry.epoch}

    def _op_stats(self):
        with self._lock:
            sessions = list(self._sessions.values())
            requests = self.requests_served
        return {
            "node": self.node_id,
            "requests_served": requests,
            "samples_served": sum(s.serving_counters()[0] for s in sessions),
            "open_sessions": len(sessions),
            "registry": self.registry.registry_info(),
        }

    def _op_flush(self):
        """Drop warm state (cache + session memos); registrations survive.

        Benchmarks use this to measure genuinely cold passes on a built
        cluster without re-registering kernels.
        """
        with self._lock:
            sessions, self._sessions = list(self._sessions.values()), {}
        for session in sessions:
            session.close()
        self.registry.cache.clear()
        return True

    def _op_shutdown(self):
        # reply frames before the socket dies: schedule the stop just after
        threading.Timer(0.05, self.stop).start()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardNode({self.node_id!r}, address={self.address})"
