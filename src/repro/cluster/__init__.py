"""The cluster layer: sharded registries + factorization caches over a ring.

One process can only hold so many kernels and their eigendecompositions.
This package shards the serving layer horizontally while keeping its
contract — **fixed-seed samples through a cluster are byte-identical to a
single-node session** — because shards run the ordinary
:mod:`repro.service` stack and the ring only decides *where* warm artifacts
live:

::

    workload                    cluster layer                      shard nodes
    --------                    -------------                      -----------
    serve_cluster(L) ──▶ ClusterSession ──▶ ClusterClient          ShardNode 0
                          sample/warm/       │ fingerprint ──▶     ┌─────────┐
                          submit/drain       ▼                     │registry │
                                          HashRing ── owners ──▶   │ + cache │
                                          (consistent hashing,     │ engine  │
                                           R replicas, vnodes)     └─────────┘
                                             │ failover                ...
                                             └─────────────────▶   ShardNode N-1

* :class:`~repro.cluster.ring.HashRing` — consistent hashing with virtual
  nodes, keyed on the same content fingerprints the factorization caches use.
* :class:`~repro.cluster.node.ShardNode` — a headless
  :class:`~repro.service.registry.KernelRegistry` +
  :class:`~repro.service.cache.FactorizationCache` behind a tiny
  length-prefixed-pickle socket protocol (register / warm / sample / drain /
  stats / export).
* :class:`~repro.cluster.client.ClusterClient` — routing, replication factor
  R with read-through failover, rebalance-on-membership-change that moves
  only ``≈ K/N`` fingerprints, and ``cluster_info()`` rolling up every
  node's ``cache_info()``.
* :class:`~repro.cluster.client.ClusterSession` — the drop-in
  ``SamplerSession``-shaped facade :func:`serve_cluster` returns.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.cluster.client import ClusterClient, ClusterSession, RebalanceReport
from repro.cluster.local import LocalCluster
from repro.cluster.node import ShardNode
from repro.cluster.protocol import ClusterError, NodeUnavailable, RemoteError
from repro.cluster.ring import HashRing
from repro.utils.rng import SeedLike

__all__ = [
    "ClusterClient",
    "ClusterError",
    "ClusterSession",
    "HashRing",
    "LocalCluster",
    "NodeUnavailable",
    "RebalanceReport",
    "RemoteError",
    "ShardNode",
    "serve_cluster",
]


def serve_cluster(kernel, *,
                  cluster: Optional[Union[LocalCluster, ClusterClient]] = None,
                  nodes: int = 3, replication: int = 1,
                  name: Optional[str] = None, kind: Optional[str] = None,
                  parts: Optional[Sequence[Sequence[int]]] = None,
                  counts: Optional[Sequence[int]] = None,
                  warm: bool = False, validate: bool = True,
                  scheduler_seed: SeedLike = 0) -> ClusterSession:
    """Open a :class:`ClusterSession` — ``repro.serve`` across shard nodes.

    ``kernel`` is a raw ensemble matrix (registered on its ring owners
    first) or the name of a kernel some client already registered.  With no
    ``cluster=``, a private :class:`LocalCluster` of ``nodes`` in-process
    shards is started and owned by the returned session (``close()`` shuts
    it down); pass an existing :class:`LocalCluster` or
    :class:`ClusterClient` to share one cluster across sessions.

    The facade keeps the single-node serving contract: for any node count
    ``N ≥ 1`` and replication ``R``, fixed-seed draws equal a single-node
    ``repro.serve(L)`` session's byte for byte — sharding moves
    preprocessing artifacts, never randomness.

    Examples
    --------
    >>> session = repro.serve_cluster(L, nodes=3, replication=2)  # doctest: +SKIP
    >>> session.sample(k=5, seed=123).subset                      # doctest: +SKIP
    """
    owned: Optional[LocalCluster] = None
    if cluster is None:
        owned = LocalCluster(nodes=nodes, replication=replication)
        client = owned.client()
    elif isinstance(cluster, LocalCluster):
        client = cluster.client()
    else:
        client = cluster
    try:
        if isinstance(kernel, str):
            if name is not None or parts is not None or counts is not None:
                raise ValueError(
                    "name=/parts=/counts= apply when registering a matrix; "
                    f"{kernel!r} is already registered"
                )
            entry = client.lookup(kernel)
            if kind is not None and kind != entry.kind:
                raise ValueError(
                    f"kernel {kernel!r} is registered as kind={entry.kind!r}, not {kind!r}"
                )
            if warm:
                client.warm(kernel)
        else:
            from repro.distributions.lowrank import LowRankKernel

            if isinstance(kernel, LowRankKernel):
                if kind not in (None, "lowrank"):
                    raise ValueError(
                        f"a LowRankKernel serves as kind='lowrank', not {kind!r}")
                kind, matrix = "lowrank", kernel.factor
            else:
                matrix = np.asarray(kernel, dtype=float)
            entry = client.register(
                matrix, name=name,
                kind=kind if kind is not None else "symmetric",
                parts=parts, counts=counts, warm=warm, validate=validate)
    except BaseException:
        if owned is not None:
            owned.shutdown()
        raise
    return ClusterSession(client, entry, scheduler_seed=scheduler_seed,
                          owned_cluster=owned)
