"""Length-prefixed pickle framing for the shard-node wire protocol.

One frame = an 8-byte big-endian length header followed by that many bytes of
pickle (protocol 5, so large ndarrays — sample payloads, exported kernels —
serialize without intermediate copies on 3.10+).  Requests and responses are
plain dicts: ``{"op": ..., **args}`` up, ``{"ok": True, "value": ...}`` or
``{"ok": False, "error": exc, "message": ...}`` down.  The format is
deliberately tiny — the cluster layer's interesting behavior (routing,
replication, rebalance) lives above the wire, and a dict protocol keeps node
and client versions loosely coupled.

Request frames may carry one optional metadata field: ``"trace"``, the
``{"trace_id": ..., "span_id": ...}`` wire form of the caller's
:class:`~repro.obs.context.TraceContext` (see :func:`attach_trace`).  Nodes
that understand it open server-side child spans under the caller's request;
nodes (or ops) that don't simply ignore the key — tracing is metadata, never
behavior, so mixed-version rings stay compatible.

Trust model: pickle is code execution, so this protocol is for nodes and
clients under one operator on one trust domain (the same stance as
:mod:`multiprocessing`'s own pickler).  Nodes bind loopback by default.

:class:`Connection` is the client side: lazy connect, one in-flight request
at a time (guarded), transport failures surface as :class:`NodeUnavailable`
— the signal the cluster client's replica failover catches.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Optional, Tuple

__all__ = [
    "ClusterError",
    "NodeUnavailable",
    "RemoteError",
    "send_frame",
    "recv_frame",
    "attach_trace",
    "Connection",
]

#: frame header: unsigned 64-bit big-endian payload length
_HEADER = struct.Struct(">Q")

#: sanity bound on one frame (1 GiB) — a corrupt header must not OOM the node
MAX_FRAME_BYTES = 1 << 30


class ClusterError(RuntimeError):
    """Base class for cluster-layer failures."""


class NodeUnavailable(ClusterError):
    """The node could not be reached (or hung up mid-exchange).

    Transport-level only: the request may or may not have executed, which is
    safe here because every cluster op is idempotent (register is
    content-idempotent, sampling is seed-deterministic, and ``update`` is
    chain-guarded — a replayed delta fails its ``prev`` fingerprint check
    instead of applying twice).
    """


class RemoteError(ClusterError):
    """The node executed the request and raised; carries the remote detail."""


def attach_trace(payload: dict, context) -> dict:
    """Return ``payload`` with the trace context's wire form attached.

    Copies on write: the caller's dict is never mutated, and an existing
    ``"trace"`` key (a per-request context inside a fused drain) wins over
    the ambient one.  ``context`` is a :class:`~repro.obs.context.TraceContext`
    or ``None`` (no-op).
    """
    if context is None or "trace" in payload:
        return payload
    tagged = dict(payload)
    tagged["trace"] = context.as_wire()
    return tagged


def send_frame(sock: socket.socket, obj: object) -> None:
    """Serialize ``obj`` and write one frame."""
    blob = pickle.dumps(obj, protocol=5)
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise NodeUnavailable("connection closed mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> object:
    """Read one frame; raises :class:`NodeUnavailable` on EOF/short reads."""
    header = sock.recv(_HEADER.size)
    if not header:
        raise NodeUnavailable("connection closed")
    if len(header) < _HEADER.size:
        header += _recv_exact(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} bound")
    return pickle.loads(_recv_exact(sock, int(length)))


class Connection:
    """One client's lazily connected, serially used channel to a node."""

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_sock",)}

    def __init__(self, address: Tuple[str, int], *, timeout: float = 30.0):
        self.address = (str(address[0]), int(address[1]))
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _ensure_locked(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(self.address, timeout=self.timeout)
            except OSError as exc:
                raise NodeUnavailable(f"cannot connect to {self.address}: {exc}") from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def request(self, payload: dict) -> object:
        """Send one request dict, return the remote value (or raise).

        A transport failure closes the cached socket so the next request
        reconnects — the caller decides whether to fail over instead.
        """
        with self._lock:
            sock = self._ensure_locked()
            try:
                send_frame(sock, payload)
                reply = recv_frame(sock)
            except (OSError, NodeUnavailable, EOFError, pickle.UnpicklingError) as exc:
                self._close_locked()
                if isinstance(exc, NodeUnavailable):
                    raise
                raise NodeUnavailable(f"transport failure to {self.address}: {exc}") from exc
        if not isinstance(reply, dict) or "ok" not in reply:
            raise ClusterError(f"malformed reply from {self.address}: {reply!r}")
        if reply["ok"]:
            return reply.get("value")
        error = reply.get("error")
        if isinstance(error, BaseException):
            # re-raise the genuine remote exception (ValueError for a bad
            # k, KeyError for an unknown kernel, ...) so the cluster session
            # stays drop-in with the local SamplerSession surface
            raise error
        raise RemoteError(str(reply.get("message", error)))

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
