"""Shared stat-rollup helpers: the one place serving schemas are defined.

Before this module, ``SamplerSession.stats`` and the two ``cluster_info()``
implementations (``cluster/client.py`` and ``cluster/local.py``) each built
their dicts by hand, so the schemas could drift apart silently.  The
builders now live here, with the schema documented as **stable**: keys may
be *added* in later PRs, but existing keys keep their names, types, and
meaning.  Everything returned is ``json.dumps``-serializable.

Session stats schema (``session_stats``)::

    {
      "kernel": str,                  # registered kernel name
      "kind": str,                    # symmetric | nonsymmetric | partition | lowrank
      "n": int,                       # ground-set size
      "samples_served": int,
      "cache": {                      # FactorizationCache counters (CacheStats.as_dict)
        "hits": int, "misses": int, "evictions": int,
        "size_evictions": int, "expired": int, "invalidations": int,
      },
      "cached_artifacts_bytes": int,
      "scheduler": {...},             # present only once a RoundScheduler exists
    }

Cluster rollup schema (``cluster_rollup``)::

    {
      "nodes": {node_id: node_stats_or_unreachable, ...},
      "alive": int,                   # nodes that answered the stats op
      "ring": {"nodes": [str], "vnodes": int, "replication": int},
      "registered": int,              # kernels in the client catalog
      "samples_served": int,          # summed over reachable nodes
      "failovers": int,               # client-side replica failovers
      "cache": {                      # summed node cache counters
        "hits": int, "misses": int, "evictions": int, "size_evictions": int,
        "expired": int, "invalidations": int, "entries": int, "nbytes": int,
      },
    }

An unreachable node appears as ``{"unreachable": "<error>"}`` under its id
and contributes nothing to the totals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

__all__ = ["CACHE_TOTAL_KEYS", "session_stats", "cluster_rollup"]

#: node cache counters summed ring-wide by :func:`cluster_rollup`
CACHE_TOTAL_KEYS = ("hits", "misses", "evictions", "size_evictions",
                    "expired", "invalidations", "entries", "nbytes")


def session_stats(session) -> Dict[str, object]:
    """Build the stable ``SamplerSession.stats`` dict (schema above)."""
    # samples_served and the scheduler handle are guarded session state:
    # take them in one locked snapshot instead of reading the attributes
    samples_served, scheduler = session.serving_counters()
    info: Dict[str, object] = {
        "kernel": session.entry.name,
        "kind": session.entry.kind,
        "n": session.entry.n,
        "samples_served": samples_served,
        "cache": session.cache.stats.as_dict(),
        "cached_artifacts_bytes": session.cache.nbytes,
    }
    if scheduler is not None:
        info["scheduler"] = scheduler.stats
    return info


def cluster_rollup(nodes: Mapping[str, Mapping[str, object]], *,
                   ring_nodes: Iterable[str], vnodes: int, replication: int,
                   registered: int, failovers: int) -> Dict[str, object]:
    """Aggregate per-node stats into the stable ``cluster_info()`` dict.

    ``nodes`` maps node id to either the node's ``stats`` op response or an
    ``{"unreachable": reason}`` marker (the caller owns transport; this
    helper owns the schema and the arithmetic).
    """
    totals = {key: 0 for key in CACHE_TOTAL_KEYS}
    samples = 0
    alive = 0
    for stats in nodes.values():
        if "unreachable" in stats:
            continue
        alive += 1
        samples += int(stats.get("samples_served", 0))
        cache = stats.get("registry", {}).get("cache", {})
        for key in totals:
            totals[key] += int(cache.get(key, 0))
    return {
        "nodes": dict(nodes),
        "alive": alive,
        "ring": {"nodes": list(ring_nodes), "vnodes": int(vnodes),
                 "replication": int(replication)},
        "registered": int(registered),
        "samples_served": samples,
        "failovers": int(failovers),
        "cache": totals,
    }
