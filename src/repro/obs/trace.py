"""Structured per-round tracing.

A :class:`Tracer` keeps a bounded ring buffer of structured records — one
per executed engine round (``type="round"``) plus discrete events
(``type="event"``) such as intermediate-sampling acceptances/escalations or
cluster failovers.  Records are plain dicts of JSON-serializable scalars so
``json.dumps(tracer.spans())`` always works; numpy scalars are coerced at
record time.

Like the metrics registry, the tracer is gated by ``enabled`` and costs one
boolean check per round when off.  The ring buffer bounds memory for
long-running services: old spans fall off the left, and ``dropped_spans``
counts every record lost that way so exports can surface the loss instead
of silently presenting a truncated history.

PR 10 adds request-scoped records (``type="span"``): named spans carrying a
``trace_id`` / ``span_id`` / ``parent_id`` from :mod:`repro.obs.context`,
plus optional span **links** (a fused engine round links back to every
submitter's request span).  Round records may carry the same id fields when
executed inside a traced request, making each request one connected tree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Tracer"]


def _coerce(value: object) -> object:
    """Force a record field to a JSON-serializable scalar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_coerce(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _coerce(item())
        except Exception:
            pass
    return str(value)


class Tracer:
    """Bounded, thread-safe buffer of per-round spans and discrete events."""

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_records", "_seq", "_dropped")}

    def __init__(self, capacity: int = 1024, enabled: bool = False):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._records: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_round(self, *, label: str, kind: str, family: str, backend: str,
                     queries: int, wall_time: float,
                     queue_wait: Optional[float] = None,
                     predicted_seconds: Optional[float] = None,
                     **extra: object) -> None:
        """Record one executed engine round.

        ``label`` is the round label (e.g. ``"counting round"``), ``kind``
        the :class:`OracleBatch` kind, ``family`` the distribution family
        (class name), ``backend`` the executing backend's name, ``queries``
        the batch width, ``wall_time`` the measured seconds, ``queue_wait``
        the submit→execute latency for scheduled rounds, and
        ``predicted_seconds`` the planner's estimate when the round was
        routed by ``auto``.
        """
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "type": "round",
            "label": _coerce(label),
            "kind": _coerce(kind),
            "family": _coerce(family),
            "backend": _coerce(backend),
            "queries": int(queries),
            "wall_time": float(wall_time),
            "monotonic": time.perf_counter(),
        }
        if queue_wait is not None:
            record["queue_wait"] = float(queue_wait)
        if predicted_seconds is not None:
            record["predicted_seconds"] = float(predicted_seconds)
        for field, value in extra.items():
            record[field] = _coerce(value)
        self._append(record)

    def event(self, category: str, **fields: object) -> None:
        """Record a discrete event (acceptance, escalation, failover...)."""
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "type": "event",
            "category": _coerce(category),
            "monotonic": time.perf_counter(),
        }
        for field, value in fields.items():
            record[field] = _coerce(value)
        self._append(record)

    def record_span(self, *, name: str, category: str,
                    trace_id: Optional[str] = None,
                    span_id: Optional[str] = None,
                    parent_id: Optional[str] = None,
                    start: Optional[float] = None,
                    duration: Optional[float] = None,
                    links: Optional[List[Dict[str, str]]] = None,
                    **attrs: object) -> None:
        """Record one completed request-scoped span.

        ``start`` is a ``perf_counter`` instant and ``duration`` seconds;
        ``links`` are ``{"trace_id": ..., "span_id": ...}`` references to
        spans in *other* requests (fused-round attribution).
        """
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "type": "span",
            "name": _coerce(name),
            "category": _coerce(category),
            "monotonic": time.perf_counter(),
        }
        if trace_id is not None:
            record["trace_id"] = str(trace_id)
        if span_id is not None:
            record["span_id"] = str(span_id)
        if parent_id is not None:
            record["parent_id"] = str(parent_id)
        if start is not None:
            record["start"] = float(start)
        if duration is not None:
            record["duration"] = float(duration)
        if links:
            record["links"] = [_coerce(dict(link)) for link in links]
        for field, value in attrs.items():
            record[field] = _coerce(value)
        self._append(record)

    def _append(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if len(self._records) == self._records.maxlen:
                self._dropped += 1
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[Dict[str, object]]:
        """All buffered records, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def spans(self) -> List[Dict[str, object]]:
        """Only the per-round spans."""
        return [r for r in self.records() if r.get("type") == "round"]

    def request_spans(self) -> List[Dict[str, object]]:
        """Only the request-scoped spans (``type="span"``)."""
        return [r for r in self.records() if r.get("type") == "span"]

    def trace_tree(self, trace_id: str) -> List[Dict[str, object]]:
        """Every record belonging to one request's trace, oldest first."""
        return [r for r in self.records() if r.get("trace_id") == trace_id]

    @property
    def dropped_spans(self) -> int:
        """Records lost to ring-buffer overwrite since the last ``clear``."""
        with self._lock:
            return self._dropped

    def events(self, category: Optional[str] = None) -> List[Dict[str, object]]:
        """Only the discrete events, optionally filtered by category."""
        rows = [r for r in self.records() if r.get("type") == "event"]
        if category is not None:
            rows = [r for r in rows if r.get("category") == category]
        return rows

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
