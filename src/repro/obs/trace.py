"""Structured per-round tracing.

A :class:`Tracer` keeps a bounded ring buffer of structured records — one
per executed engine round (``type="round"``) plus discrete events
(``type="event"``) such as intermediate-sampling acceptances/escalations or
cluster failovers.  Records are plain dicts of JSON-serializable scalars so
``json.dumps(tracer.spans())`` always works; numpy scalars are coerced at
record time.

Like the metrics registry, the tracer is gated by ``enabled`` and costs one
boolean check per round when off.  The ring buffer bounds memory for
long-running services: old spans fall off the left.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Tracer"]


def _coerce(value: object) -> object:
    """Force a record field to a JSON-serializable scalar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_coerce(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _coerce(item())
        except Exception:
            pass
    return str(value)


class Tracer:
    """Bounded, thread-safe buffer of per-round spans and discrete events."""

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_records", "_seq")}

    def __init__(self, capacity: int = 1024, enabled: bool = False):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._records: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._seq = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_round(self, *, label: str, kind: str, family: str, backend: str,
                     queries: int, wall_time: float,
                     queue_wait: Optional[float] = None,
                     predicted_seconds: Optional[float] = None,
                     **extra: object) -> None:
        """Record one executed engine round.

        ``label`` is the round label (e.g. ``"counting round"``), ``kind``
        the :class:`OracleBatch` kind, ``family`` the distribution family
        (class name), ``backend`` the executing backend's name, ``queries``
        the batch width, ``wall_time`` the measured seconds, ``queue_wait``
        the submit→execute latency for scheduled rounds, and
        ``predicted_seconds`` the planner's estimate when the round was
        routed by ``auto``.
        """
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "type": "round",
            "label": _coerce(label),
            "kind": _coerce(kind),
            "family": _coerce(family),
            "backend": _coerce(backend),
            "queries": int(queries),
            "wall_time": float(wall_time),
            "monotonic": time.perf_counter(),
        }
        if queue_wait is not None:
            record["queue_wait"] = float(queue_wait)
        if predicted_seconds is not None:
            record["predicted_seconds"] = float(predicted_seconds)
        for field, value in extra.items():
            record[field] = _coerce(value)
        self._append(record)

    def event(self, category: str, **fields: object) -> None:
        """Record a discrete event (acceptance, escalation, failover...)."""
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "type": "event",
            "category": _coerce(category),
            "monotonic": time.perf_counter(),
        }
        for field, value in fields.items():
            record[field] = _coerce(value)
        self._append(record)

    def _append(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[Dict[str, object]]:
        """All buffered records, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def spans(self) -> List[Dict[str, object]]:
        """Only the per-round spans."""
        return [r for r in self.records() if r.get("type") == "round"]

    def events(self, category: Optional[str] = None) -> List[Dict[str, object]]:
        """Only the discrete events, optionally filtered by category."""
        rows = [r for r in self.records() if r.get("type") == "event"]
        if category is not None:
            rows = [r for r in rows if r.get("category") == category]
        return rows

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
