"""Process-wide metrics primitives: counters, gauges, histograms.

The :class:`MetricsRegistry` is the single store every instrumented layer
(engine backends, planner, scheduler, caches, cluster nodes) writes into.
Three design constraints drive the implementation:

* **near-zero overhead when disabled** — every instrument method starts with
  one attribute read (``registry.enabled``) and returns immediately when the
  registry is off, so the instrumented hot paths (one call per adaptive
  round) cost a function call and a boolean check;
* **thread-safety** — samplers, schedulers, and shard-node threads all write
  concurrently; each instrument guards its value table with one lock held
  only for the increment (no allocation inside the lock on the warm path);
* **two export surfaces from one store** — :meth:`MetricsRegistry.snapshot`
  (plain JSON-serializable dicts) and
  :meth:`MetricsRegistry.render_prometheus` (Prometheus text exposition
  format 0.0.4: ``# HELP``/``# TYPE`` headers, label escaping, cumulative
  histogram buckets with ``+Inf``, ``_sum``/``_count`` series).

Histograms use **fixed bucket boundaries** chosen at construction — never
adaptive — so series from different runs/processes are mergeable and the
Prometheus exposition is stable across scrapes.

Collectors (registered callables returning :class:`CollectedMetric` rows)
let long-lived objects that already keep their own counters — the
factorization caches, kernel registries — re-export that state through the
registry at snapshot/render time without double bookkeeping on their hot
paths.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CollectedMetric",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "RATIO_BUCKETS",
]

#: latency buckets (seconds): 10 µs .. 30 s, roughly log-spaced
TIME_BUCKETS = (1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0)

#: cardinality buckets (queries per round, fusion widths, pool sizes)
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0)

#: dimensionless ratio buckets centred on 1.0 (predicted-vs-actual errors)
RATIO_BUCKETS = (1 / 64, 1 / 16, 1 / 4, 1 / 2, 1.0, 2.0, 4.0, 16.0, 64.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - defensive
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(labelnames: Sequence[str], labelvalues: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in zip(labelnames, labelvalues))
    return "{" + inner + "}"


class _Instrument:
    """Shared plumbing: name/help/labels validation and the value table."""

    kind = "untyped"

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race
    #: harness); Counter/Gauge/Histogram inherit this declaration
    _GUARDED_BY = {"_lock": ("_values",)}

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str]):
        self._registry = registry
        self.name = _check_name(name)
        self.help = str(help)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    # export hooks (overridden by Histogram) ---------------------------- #
    def _snapshot_values(self) -> List[Dict[str, object]]:
        with self._lock:
            items = list(self._values.items())
        return [{"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in items]

    def _render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(f"{self.name}{_label_pairs(self.labelnames, key)} "
                         f"{_format_value(float(value))}")


class Counter(_Instrument):
    """A monotonically increasing total (``inc`` only)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """A point-in-time value (``set``/``add``)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Histogram(_Instrument):
    """Fixed-boundary histogram (counts per bucket plus sum/count).

    ``buckets`` are the **upper bounds** of the finite buckets, strictly
    increasing; an implicit ``+Inf`` bucket always exists.  Exposition uses
    Prometheus' cumulative convention.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str], buckets: Sequence[float] = TIME_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        v = float(value)
        slot = bisect_left(self.buckets, v)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0,
                         "count": 0}
                self._values[key] = state
            state["counts"][slot] += 1
            state["sum"] += v
            state["count"] += 1

    def value(self, **labels: object) -> Dict[str, object]:
        """The (non-cumulative) state for one label set; zeros when unseen."""
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0,
                        "count": 0}
            return {"counts": list(state["counts"]), "sum": state["sum"],
                    "count": state["count"]}

    def _snapshot_values(self) -> List[Dict[str, object]]:
        with self._lock:
            items = [(key, {"counts": list(state["counts"]), "sum": state["sum"],
                            "count": state["count"]})
                     for key, state in self._values.items()]
        return [{"labels": dict(zip(self.labelnames, key)),
                 "buckets": list(self.buckets), **state} for key, state in items]

    def _render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted((key, list(state["counts"]), state["sum"], state["count"])
                           for key, state in self._values.items())
        for key, counts, total, count in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                pairs = _label_pairs(self.labelnames + ("le",),
                                     key + (_format_value(bound),))
                lines.append(f"{self.name}_bucket{pairs} {cumulative}")
            cumulative += counts[-1]
            pairs = _label_pairs(self.labelnames + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{pairs} {cumulative}")
            base = _label_pairs(self.labelnames, key)
            lines.append(f"{self.name}_sum{base} {_format_value(total)}")
            lines.append(f"{self.name}_count{base} {count}")


@dataclass
class CollectedMetric:
    """One metric contributed by a registered collector at export time.

    ``samples`` maps label dicts to values; ``kind`` is ``"counter"`` or
    ``"gauge"`` (collector-fed histograms are not supported — collectors
    re-export *existing* counters, they do not observe distributions).
    """

    name: str
    kind: str = "gauge"
    help: str = ""
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)


class MetricsRegistry:
    """The process-wide instrument store behind :mod:`repro.obs`.

    ``enabled`` gates every write; instruments can be created eagerly at
    import time without cost.  Instruments are get-or-create by name —
    asking twice with a consistent (kind, labelnames) signature returns the
    same object, a mismatch raises.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_instruments", "_collectors")}

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}
        self._collectors: List[Callable[[], Iterable[CollectedMetric]]] = []

    # ------------------------------------------------------------------ #
    # instrument construction
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}")
                return existing
            instrument = cls(self, name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = TIME_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # ------------------------------------------------------------------ #
    # collectors
    # ------------------------------------------------------------------ #
    def register_collector(self, collector: Callable[[], Iterable[CollectedMetric]]) -> None:
        """Add a callable polled at snapshot/render time (idempotent)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], Iterable[CollectedMetric]]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def _collected(self) -> List[CollectedMetric]:
        with self._lock:
            collectors = list(self._collectors)
        rows: List[CollectedMetric] = []
        for collector in collectors:
            try:
                rows.extend(collector())
            except Exception:  # a broken collector must never break export
                continue
        return rows

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every instrument and collector."""
        with self._lock:
            instruments = list(self._instruments.values())
        metrics: Dict[str, object] = {}
        for instrument in instruments:
            values = instrument._snapshot_values()
            if not values:
                continue
            metrics[instrument.name] = {"type": instrument.kind,
                                        "help": instrument.help,
                                        "values": values}
        for row in self._collected():
            metrics[row.name] = {
                "type": row.kind, "help": row.help,
                "values": [{"labels": dict(labels), "value": float(value)}
                           for labels, value in row.samples],
            }
        return {"enabled": self.enabled, "metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the whole registry."""
        lines: List[str] = []
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            body: List[str] = []
            instrument._render(body)
            if not body:
                continue
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(body)
        for row in self._collected():
            if not row.samples:
                continue
            if row.help:
                lines.append(f"# HELP {row.name} {row.help}")
            lines.append(f"# TYPE {row.name} {row.kind}")
            for labels, value in row.samples:
                names = tuple(sorted(labels))
                pairs = _label_pairs(names, tuple(str(labels[n]) for n in names))
                lines.append(f"{row.name}{pairs} {_format_value(float(value))}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument (instruments and collectors survive)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.clear()
