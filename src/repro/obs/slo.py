"""Streaming SLO quantiles and the slow-request flight recorder.

Two pieces, both fed from ``repro.obs`` request accounting:

* :class:`SLOTracker` — per-kernel-family request latency and per-op
  cluster latency quantiles (p50/p95/p99) via the P² streaming estimator
  (Jain & Chlamtac 1985): O(1) memory per quantile, deterministic, no
  randomness, exact for the first four observations.  Exported through
  ``repro.obs.snapshot()`` and ``render_prometheus()``.

* :class:`FlightRecorder` — a bounded ring of complete span trees captured
  from requests whose end-to-end latency exceeded a configurable budget.
  Each capture is the full list of tracer records sharing the slow
  request's ``trace_id``, ready for :func:`repro.obs.export.chrome_trace`.

Neither module imports the engine/service/cluster layers (same rule as the
rest of ``repro.obs``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["P2Quantile", "SLOTracker", "FlightRecorder", "QUANTILES"]

#: the quantiles every latency stream tracks, as (label, p) pairs
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class P2Quantile:
    """P² (piecewise-parabolic) streaming estimator for one quantile.

    Five markers track (min, two intermediates, the target quantile,
    max); marker heights adjust by parabolic interpolation as counts
    drift from their desired positions.  Until five observations arrive
    the estimate is the exact order statistic of the sorted sample.

    Not thread-safe on its own — the owning :class:`SLOTracker` serializes
    access under its lock.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = float(p)
        self._count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._count == 5:
                p = self.p
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                                 3.0 + 2.0 * p, 5.0]
                self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
            return

        h, n = self._heights, self._positions
        # locate the cell and bump the extreme markers
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # adjust interior markers toward their desired positions
        for i in (1, 2, 3):
            delta = self._desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or \
               (delta <= -1.0 and n[i - 1] - n[i] < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate, or ``None`` before any observation."""
        if self._count == 0:
            return None
        if self._count <= 5:
            # exact order statistic of the sorted sample (nearest-rank)
            rank = max(0, min(len(self._heights) - 1,
                              round(self.p * (len(self._heights) - 1))))
            return self._heights[rank]
        return self._heights[2]


class _LatencyStream:
    """One labelled latency stream: count, sum, and the tracked quantiles.

    Guarded by the owning :class:`SLOTracker`'s lock.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.quantiles = {label: P2Quantile(p) for label, p in QUANTILES}

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        for estimator in self.quantiles.values():
            estimator.observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"count": self.count, "sum": self.total}
        for label, estimator in self.quantiles.items():
            value = estimator.value()
            if value is not None:
                row[label] = value
        return row


class SLOTracker:
    """Streaming request/op latency quantiles, keyed by family and op."""

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_families", "_ops")}

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: Dict[str, _LatencyStream] = {}
        self._ops: Dict[str, _LatencyStream] = {}

    def observe_request(self, family: str, seconds: float) -> None:
        """Record one end-to-end request latency for a kernel family."""
        if not self.enabled:
            return
        with self._lock:
            stream = self._families.setdefault(str(family), _LatencyStream())
            stream.observe(seconds)

    def observe_op(self, op: str, seconds: float) -> None:
        """Record one cluster-op latency (``sample``, ``drain``, ...)."""
        if not self.enabled:
            return
        with self._lock:
            stream = self._ops.setdefault(str(op), _LatencyStream())
            stream.observe(seconds)

    def slo_state(self) -> Dict[str, object]:
        """JSON-safe view: per-family and per-op quantile rows."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "request_latency": {name: stream.as_dict()
                                    for name, stream in self._families.items()},
                "op_latency": {name: stream.as_dict()
                               for name, stream in self._ops.items()},
            }

    def collect(self) -> List[Tuple[str, str, str, List[Tuple[Dict[str, str], float]]]]:
        """Rows for the Prometheus collector: (name, kind, help, samples)."""
        with self._lock:
            families = {name: stream.as_dict()
                        for name, stream in self._families.items()}
            ops = {name: stream.as_dict() for name, stream in self._ops.items()}
        rows: List[Tuple[str, str, str, List[Tuple[Dict[str, str], float]]]] = []
        for metric, label_key, table, help_text in (
            ("repro_slo_request_latency_seconds", "family", families,
             "Streaming request latency quantiles per kernel family (P2)."),
            ("repro_slo_op_latency_seconds", "op", ops,
             "Streaming cluster-op latency quantiles (P2)."),
        ):
            quantile_samples: List[Tuple[Dict[str, str], float]] = []
            count_samples: List[Tuple[Dict[str, str], float]] = []
            for name, row in sorted(table.items()):
                for q_label, _ in QUANTILES:
                    if q_label in row:
                        quantile_samples.append((
                            {label_key: name, "quantile": q_label},
                            float(row[q_label])))  # type: ignore[arg-type]
                count_samples.append(({label_key: name},
                                      float(row["count"])))  # type: ignore[arg-type]
            if quantile_samples:
                rows.append((metric, "gauge", help_text, quantile_samples))
            if count_samples:
                rows.append((metric + "_observations_total", "counter",
                             "Observations feeding the quantile stream.",
                             count_samples))
        return rows

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self._ops.clear()


class FlightRecorder:
    """Bounded ring of span-tree captures from over-budget requests.

    Armed by setting ``budget`` (seconds); ``None`` disarms.  When a traced
    root request ends with duration > budget, ``repro.obs`` hands the
    recorder that request's complete record list (every tracer record with
    the request's ``trace_id``).  Old captures fall off the left.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_captures", "_captured_total")}

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        #: latency budget in seconds; ``None`` = disarmed.  Written only
        #: via ``arm``/``disarm`` under the obs switch lock; reads are a
        #: single atomic attribute load (same idiom as ``Tracer.enabled``).
        self.budget: Optional[float] = None
        self._lock = threading.Lock()
        self._captures: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._captured_total = 0

    def arm(self, budget: float) -> None:
        """Capture any request slower than ``budget`` seconds (>= 0)."""
        budget = float(budget)
        if budget < 0.0:
            raise ValueError("flight recorder budget must be >= 0")
        self.budget = budget

    def disarm(self) -> None:
        self.budget = None

    def capture(self, *, trace_id: str, root_span_id: str, name: str,
                family: Optional[str], duration: float,
                records: List[Dict[str, object]]) -> None:
        """Store one over-budget request's complete span tree."""
        entry: Dict[str, object] = {
            "trace_id": str(trace_id),
            "root_span_id": str(root_span_id),
            "name": str(name),
            "family": None if family is None else str(family),
            "duration": float(duration),
            "budget": self.budget,
            "records": [dict(r) for r in records],
        }
        with self._lock:
            self._captured_total += 1
            self._captures.append(entry)

    def captures(self) -> List[Dict[str, object]]:
        """All retained captures, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._captures]

    @property
    def captured_total(self) -> int:
        """Captures taken since the last ``clear`` (including evicted)."""
        with self._lock:
            return self._captured_total

    def flight_state(self) -> Dict[str, object]:
        """JSON-safe view (capture summaries, not full record lists)."""
        with self._lock:
            summaries = [
                {"trace_id": entry["trace_id"],
                 "name": entry["name"],
                 "family": entry["family"],
                 "duration": entry["duration"],
                 "records": len(entry["records"])}  # type: ignore[arg-type]
                for entry in self._captures
            ]
            total = self._captured_total
        return {
            "armed": self.budget is not None,
            "budget": self.budget,
            "capacity": self.capacity,
            "captured_total": total,
            "captures": summaries,
        }

    def clear(self) -> None:
        with self._lock:
            self._captures.clear()
            self._captured_total = 0
