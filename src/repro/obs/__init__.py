"""``repro.obs`` — unified observability for the whole serving stack.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.trace.Tracer`, and one
:class:`~repro.obs.feedback.ObservedCostFeedback` instance back every
instrumented layer:

* every engine backend wraps round execution in a span
  (``repro_rounds_total``, ``repro_round_seconds``, per-round trace records);
* the planner records predicted-vs-actual cost per routed round and — when
  the feedback knob is on — folds measurements into an online correction of
  its wall-clock pricing;
* the scheduler reports fusion width, queue wait, and drain latency;
* the factorization caches and kernel registries re-export their existing
  counters through registry *collectors* (no double bookkeeping);
* cluster nodes time every wire op and clients count replica failovers;
* the intermediate sampler emits acceptance/skip/escalation events with the
  computable acceptance certificate.

Everything is **off by default** and costs one boolean check per hook when
off.  ``enable()`` / ``disable()`` flip metrics+tracing together;
``configure(feedback=True)`` additionally arms the planner feedback loop
(a separate switch because feedback may change *routing* — never sampled
values — and operators may want visibility without self-tuning).

Export: :func:`snapshot` (JSON-serializable) and
:func:`render_prometheus` (Prometheus text exposition, scrapable from any
HTTP handler that serves the string).

This module imports nothing from ``repro.engine`` / ``repro.service`` /
``repro.cluster`` — instrumented modules import *it* (lazily where needed),
never the other way around, so there are no import cycles.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional

from repro.obs.feedback import ObservedCostFeedback, shape_bucket
from repro.obs.metrics import (CollectedMetric, Counter, Gauge, Histogram,
                               MetricsRegistry, RATIO_BUCKETS, SIZE_BUCKETS,
                               TIME_BUCKETS)
from repro.obs.rollup import CACHE_TOTAL_KEYS, cluster_rollup, session_stats
from repro.obs.trace import Tracer

__all__ = [
    "MetricsRegistry", "Tracer", "ObservedCostFeedback",
    "Counter", "Gauge", "Histogram", "CollectedMetric",
    "registry", "tracer", "feedback",
    "enabled", "enable", "disable", "configure", "reset",
    "snapshot", "render_prometheus",
    "session_stats", "cluster_rollup", "CACHE_TOTAL_KEYS",
    "family_of", "shape_bucket",
    "record_round", "record_plan", "observe_round_cost",
    "record_fusion", "record_queue_wait", "record_drain",
    "record_batch_counts", "record_intermediate",
    "record_cluster_op", "record_failover",
    "record_kernel_update", "record_update_delta",
    "register_cache", "register_kernel_registry",
]

_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = Tracer(capacity=1024, enabled=False)
_FEEDBACK = ObservedCostFeedback(enabled=False)

# --------------------------------------------------------------------- #
# metric catalog (eager: instruments are free until enabled)
# --------------------------------------------------------------------- #
_ROUNDS = _REGISTRY.counter(
    "repro_rounds_total", "Engine rounds executed", ("backend", "kind"))
_ROUND_SECONDS = _REGISTRY.histogram(
    "repro_round_seconds", "Wall time per engine round", ("backend", "kind"),
    TIME_BUCKETS)
_ROUND_QUERIES = _REGISTRY.histogram(
    "repro_round_queries", "Oracle queries per engine round", ("kind",),
    SIZE_BUCKETS)
_PLANNER_ROUNDS = _REGISTRY.counter(
    "repro_planner_rounds_total", "Rounds routed by the auto planner",
    ("chosen",))
_PLANNER_RATIO = _REGISTRY.histogram(
    "repro_planner_prediction_ratio",
    "Actual/predicted wall time of planner-routed rounds", ("backend",),
    RATIO_BUCKETS)
_SCHED_DRAINS = _REGISTRY.counter(
    "repro_scheduler_drains_total", "Scheduler drain calls")
_SCHED_FUSED = _REGISTRY.counter(
    "repro_scheduler_fused_rounds_total", "Fusion barriers flushed")
_SCHED_SUBMITTED = _REGISTRY.counter(
    "repro_scheduler_submitted_batches_total",
    "Per-request batches parked at the fusion barrier")
_SCHED_EXECUTED = _REGISTRY.counter(
    "repro_scheduler_executed_batches_total",
    "Fused batches actually executed")
_FUSION_WIDTH = _REGISTRY.histogram(
    "repro_scheduler_fusion_width", "Requests merged per fusion barrier", (),
    SIZE_BUCKETS)
_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "Submit-to-execution latency of scheduled requests", (), TIME_BUCKETS)
_DRAIN_SECONDS = _REGISTRY.histogram(
    "repro_scheduler_drain_seconds", "Wall time per scheduler drain", (),
    TIME_BUCKETS)
_INTER_PROPOSALS = _REGISTRY.counter(
    "repro_intermediate_proposals_total",
    "Intermediate-sampling proposal outcomes", ("outcome",))
_INTER_ESCALATIONS = _REGISTRY.counter(
    "repro_intermediate_escalations_total",
    "Candidate-pool escalations (beta doublings)")
_INTER_CERT = _REGISTRY.histogram(
    "repro_intermediate_acceptance_certificate",
    "Computable acceptance certificate exp(-logdet) per proposal", (),
    RATIO_BUCKETS)
_INTER_POOL = _REGISTRY.histogram(
    "repro_intermediate_pool_size", "Candidate pool size per proposal", (),
    SIZE_BUCKETS)
_CLUSTER_OP_SECONDS = _REGISTRY.histogram(
    "repro_cluster_node_op_seconds", "Shard-node handler latency per op",
    ("op",), TIME_BUCKETS)
_CLUSTER_REQUESTS = _REGISTRY.counter(
    "repro_cluster_node_requests_total", "Shard-node requests handled",
    ("op",))
_CLUSTER_FAILOVERS = _REGISTRY.counter(
    "repro_cluster_client_failovers_total",
    "Client-side replica failovers")
_KERNEL_UPDATES = _REGISTRY.counter(
    "repro_kernel_updates_total",
    "Incremental kernel updates applied", ("kind", "decision"))
_UPDATE_DEPTH = _REGISTRY.histogram(
    "repro_kernel_update_depth",
    "Fingerprint-chain depth at each applied update", (), SIZE_BUCKETS)
_UPDATE_SECONDS = _REGISTRY.histogram(
    "repro_kernel_update_seconds",
    "Wall time per incremental update (patch or refactorization)",
    ("decision",), TIME_BUCKETS)
_UPDATE_DELTA_BYTES = _REGISTRY.histogram(
    "repro_cluster_update_delta_bytes",
    "Delta payload bytes shipped per cluster kernel update", (),
    SIZE_BUCKETS)

# --------------------------------------------------------------------- #
# singletons & switches
# --------------------------------------------------------------------- #
_SWITCH_LOCK = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide per-round tracer."""
    return _TRACER


def feedback() -> ObservedCostFeedback:
    """The process-wide measured-cost feedback state."""
    return _FEEDBACK


def enabled() -> bool:
    """Whether metrics collection is currently on."""
    return _REGISTRY.enabled


def enable(*, trace: bool = True, feedback: Optional[bool] = None) -> None:
    """Turn on metrics (and by default tracing); optionally arm feedback."""
    configure(metrics=True, trace=trace, feedback=feedback)


def disable() -> None:
    """Turn off metrics, tracing, and feedback collection."""
    configure(metrics=False, trace=False, feedback=False)


def configure(*, metrics: Optional[bool] = None, trace: Optional[bool] = None,
              feedback: Optional[bool] = None) -> Dict[str, bool]:
    """Flip individual observability switches; ``None`` leaves one as-is.

    Returns the resulting switch state.  ``feedback`` is deliberately a
    separate knob: it lets the planner re-price routes from measured round
    wall-times, which may change *which backend runs a round* but — by the
    engine's seed-identity invariant — never the sampled values.
    """
    with _SWITCH_LOCK:
        if metrics is not None:
            _REGISTRY.enabled = bool(metrics)
        if trace is not None:
            _TRACER.enabled = bool(trace)
        if feedback is not None:
            _FEEDBACK.enabled = bool(feedback)
        return {"metrics": _REGISTRY.enabled, "trace": _TRACER.enabled,
                "feedback": _FEEDBACK.enabled}


def reset() -> None:
    """Zero all metric values, trace records, and feedback state.

    Switches and registered instruments/collectors are left untouched.
    """
    _REGISTRY.reset()
    _TRACER.clear()
    _FEEDBACK.reset()


def snapshot() -> Dict[str, object]:
    """One JSON-serializable dump of metrics + trace + feedback state."""
    return {
        "metrics": _REGISTRY.snapshot(),
        "trace": {"enabled": _TRACER.enabled, "capacity": _TRACER.capacity,
                  "records": _TRACER.records()},
        "feedback": _FEEDBACK.snapshot(),
    }


def render_prometheus() -> str:
    """The metrics registry in Prometheus text exposition format."""
    return _REGISTRY.render_prometheus()


# --------------------------------------------------------------------- #
# hot-path hooks (each starts with one boolean check when disabled)
# --------------------------------------------------------------------- #
def family_of(batch) -> str:
    """Distribution-family label of an OracleBatch (class name or 'matrix')."""
    distribution = getattr(batch, "distribution", None)
    if distribution is not None:
        return type(distribution).__name__
    return "matrix"


def record_round(batch, result, *, backend: Optional[str] = None,
                 queue_wait: Optional[float] = None,
                 predicted_seconds: Optional[float] = None) -> None:
    """Span for one executed engine round (called by every backend)."""
    if not (_REGISTRY.enabled or _TRACER.enabled):
        return
    name = backend if backend is not None else result.backend
    kind = batch.kind
    queries = int(result.n_queries)
    if _REGISTRY.enabled:
        _ROUNDS.inc(backend=name, kind=kind)
        _ROUND_SECONDS.observe(result.wall_time, backend=name, kind=kind)
        _ROUND_QUERIES.observe(float(queries), kind=kind)
    if _TRACER.enabled:
        _TRACER.record_round(
            label=batch.label, kind=kind, family=family_of(batch),
            backend=name, queries=queries, wall_time=result.wall_time,
            queue_wait=queue_wait, predicted_seconds=predicted_seconds)


def record_plan(decision) -> None:
    """One auto-planner routing decision (a PlanDecision-shaped object)."""
    if _REGISTRY.enabled:
        _PLANNER_ROUNDS.inc(chosen=decision.chosen)
    if _TRACER.enabled:
        _TRACER.event("plan", kind=decision.kind, label=decision.label,
                      queries=decision.queries, chosen=decision.chosen,
                      reason=decision.reason,
                      estimates=dict(decision.estimates))


def observe_round_cost(backend: str, family: str, queries: int,
                       predicted_seconds: float, actual_seconds: float) -> None:
    """Predicted-vs-actual for one planner-routed round.

    Feeds both the prediction-error histogram and — when armed — the
    measured-cost feedback correction.
    """
    if _REGISTRY.enabled and predicted_seconds > 0 and actual_seconds >= 0:
        _PLANNER_RATIO.observe(actual_seconds / predicted_seconds,
                               backend=backend)
    _FEEDBACK.observe(backend, family, queries, predicted_seconds,
                      actual_seconds)


def record_fusion(width: int) -> None:
    """One fusion-barrier flush merging ``width`` parked requests."""
    if not _REGISTRY.enabled:
        return
    _SCHED_FUSED.inc()
    _FUSION_WIDTH.observe(float(width))


def record_queue_wait(seconds: float) -> None:
    if _REGISTRY.enabled:
        _QUEUE_WAIT.observe(seconds)


def record_drain(seconds: float, requests: int) -> None:
    """One completed scheduler drain of ``requests`` tickets."""
    if _REGISTRY.enabled:
        _SCHED_DRAINS.inc()
        _DRAIN_SECONDS.observe(seconds)
    if _TRACER.enabled:
        _TRACER.event("drain", seconds=seconds, requests=requests)


def record_batch_counts(submitted: int, executed: int) -> None:
    """Barrier-level batch accounting merged after one drain wave."""
    if not _REGISTRY.enabled:
        return
    if submitted:
        _SCHED_SUBMITTED.inc(submitted)
    if executed:
        _SCHED_EXECUTED.inc(executed)


def record_intermediate(outcome: str, *, certificate: Optional[float] = None,
                        pool: Optional[int] = None,
                        beta: Optional[float] = None,
                        attempt: Optional[int] = None) -> None:
    """One intermediate-sampling proposal outcome.

    ``outcome`` ∈ {accepted, rejected, skipped_trace, skipped_certificate,
    direct}; escalations (beta doublings) are counted whenever a
    skip/rejection escalates the pool.  Recording never touches the
    sampler's random stream.
    """
    if _REGISTRY.enabled:
        _INTER_PROPOSALS.inc(outcome=outcome)
        if outcome in ("rejected", "skipped_trace", "skipped_certificate"):
            _INTER_ESCALATIONS.inc()
        if certificate is not None:
            _INTER_CERT.observe(certificate)
        if pool is not None:
            _INTER_POOL.observe(float(pool))
    if _TRACER.enabled:
        _TRACER.event("intermediate", outcome=outcome, certificate=certificate,
                      pool=pool, beta=beta, attempt=attempt)


def record_cluster_op(op: str, seconds: float) -> None:
    """One shard-node wire op handled in ``seconds``."""
    if not _REGISTRY.enabled:
        return
    _CLUSTER_REQUESTS.inc(op=op)
    _CLUSTER_OP_SECONDS.observe(seconds, op=op)


def record_kernel_update(kind: str, decision: str, depth: int,
                         seconds: Optional[float] = None) -> None:
    """One incremental kernel update applied by a registry/session.

    ``decision`` ∈ {patched, recomputed}: whether cached artifacts were
    carried over via the O(n·k)/O(n²) update identities or the planner's
    break-even policy (or an evicted predecessor) forced a cold
    refactorization.
    """
    if _REGISTRY.enabled:
        _KERNEL_UPDATES.inc(kind=kind, decision=decision)
        _UPDATE_DEPTH.observe(float(depth))
        if seconds is not None:
            _UPDATE_SECONDS.observe(seconds, decision=decision)
    if _TRACER.enabled:
        _TRACER.event("kernel_update", kind=kind, decision=decision,
                      depth=depth, seconds=seconds)


def record_update_delta(nbytes: int) -> None:
    """Delta payload size of one cluster-shipped kernel update."""
    if _REGISTRY.enabled:
        _UPDATE_DELTA_BYTES.observe(float(nbytes))


def record_failover(fingerprint: Optional[str] = None) -> None:
    """One client-side replica failover."""
    if _REGISTRY.enabled:
        _CLUSTER_FAILOVERS.inc()
    if _TRACER.enabled:
        _TRACER.event("failover", fingerprint=fingerprint)


# --------------------------------------------------------------------- #
# collectors: re-export cache/registry counters without double bookkeeping
# --------------------------------------------------------------------- #
_CACHES: "weakref.WeakSet" = weakref.WeakSet()
_KERNEL_REGISTRIES: "weakref.WeakSet" = weakref.WeakSet()


def register_cache(cache) -> None:
    """Track a FactorizationCache for the summed cache collector (weakref)."""
    _CACHES.add(cache)


def register_kernel_registry(kernel_registry) -> None:
    """Track a KernelRegistry for the registration-census collector."""
    _KERNEL_REGISTRIES.add(kernel_registry)


def _collect_caches() -> List[CollectedMetric]:
    """Sum CacheStats counters across live caches (reads attrs directly —
    no TTL sweeps, no lock contention beyond one dict read per cache)."""
    caches = list(_CACHES)
    if not caches:
        return []
    totals = {"hits": 0, "misses": 0, "evictions": 0, "size_evictions": 0,
              "expired": 0, "invalidations": 0, "update_patched": 0,
              "update_recomputed": 0}
    entries = 0
    for cache in caches:
        stats = cache.stats
        for key in totals:
            totals[key] += getattr(stats, key)
        entries += len(cache)
    rows = [
        CollectedMetric(
            name=f"repro_cache_{key}_total", kind="counter",
            help=f"Factorization-cache {key.replace('_', ' ')} (all caches)",
            samples=[({}, float(value))])
        for key, value in totals.items()
    ]
    rows.append(CollectedMetric(
        name="repro_cache_entries", kind="gauge",
        help="Resident factorization-cache entries (all caches)",
        samples=[({}, float(entries))]))
    return rows


def _collect_kernel_registries() -> List[CollectedMetric]:
    registries = list(_KERNEL_REGISTRIES)
    if not registries:
        return []
    registered = 0
    ephemeral = 0
    for kernel_registry in registries:
        census = kernel_registry.census()
        registered += census["registered"]
        ephemeral += census["ephemeral"]
    return [
        CollectedMetric(name="repro_registry_kernels", kind="gauge",
                        help="Registered kernels (all registries)",
                        samples=[({}, float(registered))]),
        CollectedMetric(name="repro_registry_ephemeral_kernels", kind="gauge",
                        help="Ephemeral registrations (all registries)",
                        samples=[({}, float(ephemeral))]),
    ]


_REGISTRY.register_collector(_collect_caches)
_REGISTRY.register_collector(_collect_kernel_registries)
