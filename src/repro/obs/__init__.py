"""``repro.obs`` — unified observability for the whole serving stack.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.trace.Tracer`, and one
:class:`~repro.obs.feedback.ObservedCostFeedback` instance back every
instrumented layer:

* every engine backend wraps round execution in a span
  (``repro_rounds_total``, ``repro_round_seconds``, per-round trace records);
* the planner records predicted-vs-actual cost per routed round and — when
  the feedback knob is on — folds measurements into an online correction of
  its wall-clock pricing;
* the scheduler reports fusion width, queue wait, and drain latency;
* the factorization caches and kernel registries re-export their existing
  counters through registry *collectors* (no double bookkeeping);
* cluster nodes time every wire op and clients count replica failovers;
* the intermediate sampler emits acceptance/skip/escalation events with the
  computable acceptance certificate.

PR 10 adds **request-scoped distributed tracing** on top: a deterministic
:class:`~repro.obs.context.TraceContext` born at
``SamplerSession.sample()`` / ``ClusterSession.submit()`` flows through
the fused scheduler (span links from each fused round back to every
submitter's request span), across cluster protocol frames (optional
``trace`` field; shard nodes open server-side child spans) and into
process-pool worker chunks via ``BatchPayload.trace``.  Request latencies
feed an :class:`~repro.obs.slo.SLOTracker` (streaming p50/p95/p99 per
kernel family and per cluster op, P² estimator) and a
:class:`~repro.obs.slo.FlightRecorder` that keeps the complete span tree
of any request slower than a configurable budget, exportable as Chrome
trace-event JSON (:mod:`repro.obs.export`).

Everything is **off by default** and costs one boolean check per hook when
off.  ``enable()`` / ``disable()`` flip metrics+tracing together;
``configure(feedback=True)`` additionally arms the planner feedback loop
(a separate switch because feedback may change *routing* — never sampled
values — and operators may want visibility without self-tuning);
``configure(slo=True)`` arms latency quantiles and
``configure(flight_budget=0.040)`` arms the flight recorder at 40 ms.

Export: :func:`snapshot` (JSON-serializable) and
:func:`render_prometheus` (Prometheus text exposition, scrapable from any
HTTP handler that serves the string), plus ``python -m repro.obs`` for
JSON/Prometheus/Chrome-trace dumps without writing code.

This module imports nothing from ``repro.engine`` / ``repro.service`` /
``repro.cluster`` — instrumented modules import *it* (lazily where needed),
never the other way around, so there are no import cycles.
"""

from __future__ import annotations

import contextlib
import threading
import time
import weakref
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.context import (Span, TraceContext, activate, context_from_wire,
                               current_context, new_context, reset_ids)
from repro.obs.export import (chrome_trace, chrome_trace_events,
                              dump_chrome_trace)
from repro.obs.feedback import ObservedCostFeedback, shape_bucket
from repro.obs.metrics import (CollectedMetric, Counter, Gauge, Histogram,
                               MetricsRegistry, RATIO_BUCKETS, SIZE_BUCKETS,
                               TIME_BUCKETS)
from repro.obs.rollup import CACHE_TOTAL_KEYS, cluster_rollup, session_stats
from repro.obs.slo import FlightRecorder, SLOTracker
from repro.obs.trace import Tracer

__all__ = [
    "MetricsRegistry", "Tracer", "ObservedCostFeedback",
    "SLOTracker", "FlightRecorder", "TraceContext", "Span",
    "Counter", "Gauge", "Histogram", "CollectedMetric",
    "registry", "tracer", "feedback", "slo", "flight_recorder",
    "enabled", "tracing", "enable", "disable", "configure", "reset",
    "snapshot", "render_prometheus",
    "chrome_trace", "chrome_trace_events", "dump_chrome_trace",
    "session_stats", "cluster_rollup", "CACHE_TOTAL_KEYS",
    "family_of", "shape_bucket",
    "current_context", "activate", "context_from_wire",
    "start_span", "end_span", "span", "round_context",
    "request", "request_begin", "request_end", "end_request_span",
    "record_worker_span", "record_request_latency",
    "record_round", "record_plan", "observe_round_cost",
    "record_fusion", "record_queue_wait", "record_drain",
    "record_batch_counts", "record_intermediate",
    "record_cluster_op", "record_failover",
    "record_kernel_update", "record_update_delta",
    "register_cache", "register_kernel_registry",
]

_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = Tracer(capacity=1024, enabled=False)
_FEEDBACK = ObservedCostFeedback(enabled=False)
_SLO = SLOTracker(enabled=False)
_FLIGHT = FlightRecorder(capacity=16)

# --------------------------------------------------------------------- #
# metric catalog (eager: instruments are free until enabled)
# --------------------------------------------------------------------- #
_ROUNDS = _REGISTRY.counter(
    "repro_rounds_total", "Engine rounds executed", ("backend", "kind"))
_ROUND_SECONDS = _REGISTRY.histogram(
    "repro_round_seconds", "Wall time per engine round", ("backend", "kind"),
    TIME_BUCKETS)
_ROUND_QUERIES = _REGISTRY.histogram(
    "repro_round_queries", "Oracle queries per engine round", ("kind",),
    SIZE_BUCKETS)
_PLANNER_ROUNDS = _REGISTRY.counter(
    "repro_planner_rounds_total", "Rounds routed by the auto planner",
    ("chosen",))
_PLANNER_RATIO = _REGISTRY.histogram(
    "repro_planner_prediction_ratio",
    "Actual/predicted wall time of planner-routed rounds", ("backend",),
    RATIO_BUCKETS)
_SCHED_DRAINS = _REGISTRY.counter(
    "repro_scheduler_drains_total", "Scheduler drain calls")
_SCHED_FUSED = _REGISTRY.counter(
    "repro_scheduler_fused_rounds_total", "Fusion barriers flushed")
_SCHED_SUBMITTED = _REGISTRY.counter(
    "repro_scheduler_submitted_batches_total",
    "Per-request batches parked at the fusion barrier")
_SCHED_EXECUTED = _REGISTRY.counter(
    "repro_scheduler_executed_batches_total",
    "Fused batches actually executed")
_FUSION_WIDTH = _REGISTRY.histogram(
    "repro_scheduler_fusion_width", "Requests merged per fusion barrier", (),
    SIZE_BUCKETS)
_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "Submit-to-execution latency of scheduled requests", (), TIME_BUCKETS)
_DRAIN_SECONDS = _REGISTRY.histogram(
    "repro_scheduler_drain_seconds", "Wall time per scheduler drain", (),
    TIME_BUCKETS)
_INTER_PROPOSALS = _REGISTRY.counter(
    "repro_intermediate_proposals_total",
    "Intermediate-sampling proposal outcomes", ("outcome",))
_INTER_ESCALATIONS = _REGISTRY.counter(
    "repro_intermediate_escalations_total",
    "Candidate-pool escalations (beta doublings)")
_INTER_CERT = _REGISTRY.histogram(
    "repro_intermediate_acceptance_certificate",
    "Computable acceptance certificate exp(-logdet) per proposal", (),
    RATIO_BUCKETS)
_INTER_POOL = _REGISTRY.histogram(
    "repro_intermediate_pool_size", "Candidate pool size per proposal", (),
    SIZE_BUCKETS)
_CLUSTER_OP_SECONDS = _REGISTRY.histogram(
    "repro_cluster_node_op_seconds", "Shard-node handler latency per op",
    ("op",), TIME_BUCKETS)
_CLUSTER_REQUESTS = _REGISTRY.counter(
    "repro_cluster_node_requests_total", "Shard-node requests handled",
    ("op",))
_CLUSTER_FAILOVERS = _REGISTRY.counter(
    "repro_cluster_client_failovers_total",
    "Client-side replica failovers")
_KERNEL_UPDATES = _REGISTRY.counter(
    "repro_kernel_updates_total",
    "Incremental kernel updates applied", ("kind", "decision"))
_UPDATE_DEPTH = _REGISTRY.histogram(
    "repro_kernel_update_depth",
    "Fingerprint-chain depth at each applied update", (), SIZE_BUCKETS)
_UPDATE_SECONDS = _REGISTRY.histogram(
    "repro_kernel_update_seconds",
    "Wall time per incremental update (patch or refactorization)",
    ("decision",), TIME_BUCKETS)
_UPDATE_DELTA_BYTES = _REGISTRY.histogram(
    "repro_cluster_update_delta_bytes",
    "Delta payload bytes shipped per cluster kernel update", (),
    SIZE_BUCKETS)

# --------------------------------------------------------------------- #
# singletons & switches
# --------------------------------------------------------------------- #
_SWITCH_LOCK = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide per-round tracer."""
    return _TRACER


def feedback() -> ObservedCostFeedback:
    """The process-wide measured-cost feedback state."""
    return _FEEDBACK


def slo() -> SLOTracker:
    """The process-wide streaming SLO quantile tracker."""
    return _SLO


def flight_recorder() -> FlightRecorder:
    """The process-wide slow-request flight recorder."""
    return _FLIGHT


def enabled() -> bool:
    """Whether metrics collection is currently on."""
    return _REGISTRY.enabled


def tracing() -> bool:
    """Whether request/round tracing is currently on."""
    return _TRACER.enabled


#: sentinel distinguishing "leave the flight budget alone" from "disarm"
_UNSET = object()


def enable(*, trace: bool = True, feedback: Optional[bool] = None,
           slo: Optional[bool] = None,
           flight_budget: object = _UNSET) -> None:
    """Turn on metrics (and by default tracing); optionally arm feedback,
    SLO quantiles, and the flight recorder."""
    configure(metrics=True, trace=trace, feedback=feedback, slo=slo,
              flight_budget=flight_budget)


def disable() -> None:
    """Turn off metrics, tracing, feedback, SLO, and the flight recorder."""
    configure(metrics=False, trace=False, feedback=False, slo=False,
              flight_budget=None)


def configure(*, metrics: Optional[bool] = None, trace: Optional[bool] = None,
              feedback: Optional[bool] = None, slo: Optional[bool] = None,
              flight_budget: object = _UNSET) -> Dict[str, object]:
    """Flip individual observability switches; ``None`` leaves one as-is.

    Returns the resulting switch state.  ``feedback`` is deliberately a
    separate knob: it lets the planner re-price routes from measured round
    wall-times, which may change *which backend runs a round* but — by the
    engine's seed-identity invariant — never the sampled values.

    ``slo`` arms streaming request/op latency quantiles.  ``flight_budget``
    arms the flight recorder at a latency budget in seconds (``0.0``
    captures every traced request); pass ``None`` to disarm; leave unset to
    keep the current budget.
    """
    with _SWITCH_LOCK:
        if metrics is not None:
            _REGISTRY.enabled = bool(metrics)
        if trace is not None:
            _TRACER.enabled = bool(trace)
        if feedback is not None:
            _FEEDBACK.enabled = bool(feedback)
        if slo is not None:
            _SLO.enabled = bool(slo)
        if flight_budget is not _UNSET:
            if flight_budget is None:
                _FLIGHT.disarm()
            else:
                _FLIGHT.arm(float(flight_budget))  # type: ignore[arg-type]
        return {"metrics": _REGISTRY.enabled, "trace": _TRACER.enabled,
                "feedback": _FEEDBACK.enabled, "slo": _SLO.enabled,
                "flight_budget": _FLIGHT.budget}


def reset() -> None:
    """Zero all metric values, trace records, feedback/SLO state, flight
    captures, and the deterministic trace-id counter.

    Switches (including the flight budget) and registered
    instruments/collectors are left untouched.
    """
    _REGISTRY.reset()
    _TRACER.clear()
    _FEEDBACK.reset()
    _SLO.reset()
    _FLIGHT.clear()
    reset_ids()


def snapshot() -> Dict[str, object]:
    """One JSON-serializable dump of metrics + trace + SLO + flight state."""
    return {
        "metrics": _REGISTRY.snapshot(),
        "trace": {"enabled": _TRACER.enabled, "capacity": _TRACER.capacity,
                  "dropped_spans": _TRACER.dropped_spans,
                  "records": _TRACER.records()},
        "feedback": _FEEDBACK.snapshot(),
        "slo": _SLO.slo_state(),
        "flight": _FLIGHT.flight_state(),
    }


def render_prometheus() -> str:
    """The metrics registry in Prometheus text exposition format."""
    return _REGISTRY.render_prometheus()


# --------------------------------------------------------------------- #
# request-scoped spans (PR 10)
# --------------------------------------------------------------------- #
def _link_wire(link: Union[TraceContext, Dict[str, str]]) -> Dict[str, str]:
    if isinstance(link, TraceContext):
        return link.as_wire()
    return dict(link)


def start_span(name: str, *, category: str, family: Optional[str] = None,
               parent: Optional[TraceContext] = None,
               links: Optional[List[Union[TraceContext, Dict[str, str]]]] = None,
               start: Optional[float] = None,
               **attrs: object) -> Optional[Span]:
    """Open a span (``None`` when tracing is off — every consumer of the
    return value must tolerate ``None``).

    The span is a child of ``parent`` when given, else of the ambient
    context from :func:`current_context`, else a fresh trace root.
    ``start`` overrides the start instant (``perf_counter`` clock) for
    spans whose work began before the span object could be created, e.g.
    queue waits measured from a ticket's ``submitted_at``.
    """
    if not _TRACER.enabled:
        return None
    parent_context = parent if parent is not None else current_context()
    return Span(
        context=new_context(parent_context), name=name, category=category,
        start=time.perf_counter() if start is None else float(start),
        family=family,
        links=[_link_wire(link) for link in links] if links else None,
        attrs=dict(attrs))


def end_span(span: Optional[Span], *, end: Optional[float] = None,
             **attrs: object) -> None:
    """Record a completed span into the tracer (no-op for ``None``)."""
    if span is None:
        return
    finish = time.perf_counter() if end is None else float(end)
    fields = dict(span.attrs)
    fields.update(attrs)
    if span.family is not None:
        fields.setdefault("family", span.family)
    _TRACER.record_span(
        name=span.name, category=span.category,
        trace_id=span.context.trace_id, span_id=span.context.span_id,
        parent_id=span.context.parent_id, start=span.start,
        duration=max(0.0, finish - span.start), links=span.links, **fields)


@contextlib.contextmanager
def span(name: str, *, category: str, **kwargs: object) -> Iterator[Optional[Span]]:
    """``start_span`` + context activation + ``end_span`` around a block."""
    handle = start_span(name, category=category, **kwargs)  # type: ignore[arg-type]
    if handle is None:
        yield None
        return
    try:
        with activate(handle.context):
            yield handle
    finally:
        end_span(handle)


def round_context() -> Optional[TraceContext]:
    """A child context for an engine round about to execute.

    ``None`` unless tracing is on *and* the round runs inside a traced
    request — standalone rounds keep their flat (un-id'd) records.
    """
    if not _TRACER.enabled:
        return None
    parent = current_context()
    if parent is None:
        return None
    return parent.child()


def record_worker_span(fields: Dict[str, object]) -> None:
    """Record a span dict reported back by a process-pool worker chunk.

    Workers build plain dicts (their interpreter has its own obs
    singletons, all dark); the parent process stamps any missing ``start``
    and records them here once the round result is in hand.
    """
    if not _TRACER.enabled:
        return
    fields = dict(fields)
    name = str(fields.pop("name", "worker-chunk"))
    category = str(fields.pop("category", "worker_chunk"))
    _TRACER.record_span(
        name=name, category=category,
        trace_id=fields.pop("trace_id", None),  # type: ignore[arg-type]
        span_id=fields.pop("span_id", None),  # type: ignore[arg-type]
        parent_id=fields.pop("parent_id", None),  # type: ignore[arg-type]
        start=fields.pop("start", None),  # type: ignore[arg-type]
        duration=fields.pop("duration", None),  # type: ignore[arg-type]
        **fields)


def record_request_latency(family: str, seconds: float) -> None:
    """Feed one end-to-end request latency into the family SLO stream."""
    _SLO.observe_request(family, seconds)


def _maybe_capture_flight(span_handle: Span, duration: float) -> None:
    """Capture the span tree if the recorder is armed and over budget.

    Must run *after* the root span's ``end_span`` so the capture includes
    it.  Only trace roots capture — a child ending over budget belongs to
    its root's capture.
    """
    budget = _FLIGHT.budget
    if budget is None or not _TRACER.enabled:
        return
    if span_handle.context.parent_id is not None or duration <= budget:
        return
    _FLIGHT.capture(
        trace_id=span_handle.context.trace_id,
        root_span_id=span_handle.context.span_id,
        name=span_handle.name, family=span_handle.family, duration=duration,
        records=_TRACER.trace_tree(span_handle.context.trace_id))


def end_request_span(span_handle: Optional[Span], *,
                     end: Optional[float] = None, **attrs: object) -> None:
    """End a *request-root* span opened with :func:`start_span`: record it,
    then offer it to the flight recorder.  SLO accounting is separate
    (:func:`record_request_latency`) because it must run even when tracing
    is off and this function received ``None``."""
    if span_handle is None:
        return
    finish = time.perf_counter() if end is None else float(end)
    end_span(span_handle, end=finish, **attrs)
    _maybe_capture_flight(span_handle, max(0.0, finish - span_handle.start))


#: nesting depth of ``request()`` scopes in the current context — only the
#: outermost (depth 0 → root) feeds SLO quantiles and the flight recorder,
#: so ``scheduler._run_one`` wrapping ``session.sample`` counts once.
_REQUEST_DEPTH: "ContextVar[int]" = ContextVar("repro_obs_request_depth",
                                               default=0)


class _RequestToken:
    """Handle pairing ``request_begin`` with ``request_end``.

    Owned by the requesting thread; never shared — no lock."""

    __slots__ = ("span", "family", "start", "root", "_depth_token")

    def __init__(self, span: Span, family: Optional[str], start: float,
                 root: bool, depth_token: object):
        self.span = span
        self.family = family
        self.start = start
        self.root = root
        self._depth_token = depth_token


def request_begin(name: str, *, family: Optional[str] = None,
                  start: Optional[float] = None,
                  parent: Optional[TraceContext] = None,
                  links: Optional[List[Union[TraceContext, Dict[str, str]]]] = None,
                  **attrs: object) -> Optional[_RequestToken]:
    """Open request-level accounting; ``None`` when tracing and SLO are
    both off.  The caller must pass the token to :func:`request_end` and
    should execute the request body under ``activate(token.span.context)``
    (or use the :func:`request` context manager, which does both)."""
    if not (_TRACER.enabled or _SLO.enabled):
        return None
    begin = time.perf_counter() if start is None else float(start)
    depth = _REQUEST_DEPTH.get()
    depth_token = _REQUEST_DEPTH.set(depth + 1)
    parent_context = parent if parent is not None else current_context()
    span_handle = Span(
        context=new_context(parent_context), name=name, category="request",
        start=begin, family=family,
        links=[_link_wire(link) for link in links] if links else None,
        attrs=dict(attrs))
    # root = the user-facing entry point: not nested in another request
    # scope *and* not continuing a propagated context (a shard node running
    # a client's request must not SLO-count it a second time)
    return _RequestToken(span=span_handle, family=family, start=begin,
                         root=(depth == 0 and parent_context is None),
                         depth_token=depth_token)


def request_end(token: Optional[_RequestToken], *,
                error: Optional[BaseException] = None,
                **attrs: object) -> None:
    """Close request-level accounting: record the span, and — for root
    requests only — feed the family SLO stream and the flight recorder."""
    if token is None:
        return
    finish = time.perf_counter()
    duration = max(0.0, finish - token.start)
    _REQUEST_DEPTH.reset(token._depth_token)
    if error is not None:
        token.span.attrs["error"] = type(error).__name__
    token.span.attrs.update(attrs)
    if _TRACER.enabled:
        end_span(token.span, end=finish)
    if token.root:
        if token.family is not None:
            _SLO.observe_request(token.family, duration)
        if _TRACER.enabled:
            _maybe_capture_flight(token.span, duration)


@contextlib.contextmanager
def request(name: str, *, family: Optional[str] = None,
            start: Optional[float] = None,
            parent: Optional[TraceContext] = None,
            links: Optional[List[Union[TraceContext, Dict[str, str]]]] = None,
            **attrs: object) -> Iterator[Optional[_RequestToken]]:
    """Scope one request: span + ambient context + SLO/flight accounting."""
    token = request_begin(name, family=family, start=start, parent=parent,
                          links=links, **attrs)
    if token is None:
        yield None
        return
    error: Optional[BaseException] = None
    try:
        with activate(token.span.context):
            yield token
    except BaseException as exc:
        error = exc
        raise
    finally:
        request_end(token, error=error)


# --------------------------------------------------------------------- #
# hot-path hooks (each starts with one boolean check when disabled)
# --------------------------------------------------------------------- #
def family_of(batch) -> str:
    """Distribution-family label of an OracleBatch (class name or 'matrix')."""
    distribution = getattr(batch, "distribution", None)
    if distribution is not None:
        return type(distribution).__name__
    return "matrix"


def record_round(batch, result, *, backend: Optional[str] = None,
                 queue_wait: Optional[float] = None,
                 predicted_seconds: Optional[float] = None,
                 context: Optional[TraceContext] = None) -> None:
    """Span for one executed engine round (called by every backend).

    ``context`` — when the round ran inside a traced request — stamps the
    round record with trace/span/parent ids so it joins the request tree
    (the round record *is* the round's span; no duplicate is emitted).
    """
    if not (_REGISTRY.enabled or _TRACER.enabled):
        return
    name = backend if backend is not None else result.backend
    kind = batch.kind
    queries = int(result.n_queries)
    if _REGISTRY.enabled:
        _ROUNDS.inc(backend=name, kind=kind)
        _ROUND_SECONDS.observe(result.wall_time, backend=name, kind=kind)
        _ROUND_QUERIES.observe(float(queries), kind=kind)
    if _TRACER.enabled:
        ids: Dict[str, object] = {}
        if context is not None:
            ids["trace_id"] = context.trace_id
            ids["span_id"] = context.span_id
            if context.parent_id is not None:
                ids["parent_id"] = context.parent_id
        _TRACER.record_round(
            label=batch.label, kind=kind, family=family_of(batch),
            backend=name, queries=queries, wall_time=result.wall_time,
            queue_wait=queue_wait, predicted_seconds=predicted_seconds,
            **ids)


def record_plan(decision) -> None:
    """One auto-planner routing decision (a PlanDecision-shaped object)."""
    if _REGISTRY.enabled:
        _PLANNER_ROUNDS.inc(chosen=decision.chosen)
    if _TRACER.enabled:
        _TRACER.event("plan", kind=decision.kind, label=decision.label,
                      queries=decision.queries, chosen=decision.chosen,
                      reason=decision.reason,
                      estimates=dict(decision.estimates))


def observe_round_cost(backend: str, family: str, queries: int,
                       predicted_seconds: float, actual_seconds: float) -> None:
    """Predicted-vs-actual for one planner-routed round.

    Feeds both the prediction-error histogram and — when armed — the
    measured-cost feedback correction.
    """
    if _REGISTRY.enabled and predicted_seconds > 0 and actual_seconds >= 0:
        _PLANNER_RATIO.observe(actual_seconds / predicted_seconds,
                               backend=backend)
    _FEEDBACK.observe(backend, family, queries, predicted_seconds,
                      actual_seconds)


def record_fusion(width: int) -> None:
    """One fusion-barrier flush merging ``width`` parked requests."""
    if not _REGISTRY.enabled:
        return
    _SCHED_FUSED.inc()
    _FUSION_WIDTH.observe(float(width))


def record_queue_wait(seconds: float) -> None:
    if _REGISTRY.enabled:
        _QUEUE_WAIT.observe(seconds)


def record_drain(seconds: float, requests: int) -> None:
    """One completed scheduler drain of ``requests`` tickets."""
    if _REGISTRY.enabled:
        _SCHED_DRAINS.inc()
        _DRAIN_SECONDS.observe(seconds)
    if _TRACER.enabled:
        _TRACER.event("drain", seconds=seconds, requests=requests)


def record_batch_counts(submitted: int, executed: int) -> None:
    """Barrier-level batch accounting merged after one drain wave."""
    if not _REGISTRY.enabled:
        return
    if submitted:
        _SCHED_SUBMITTED.inc(submitted)
    if executed:
        _SCHED_EXECUTED.inc(executed)


def record_intermediate(outcome: str, *, certificate: Optional[float] = None,
                        pool: Optional[int] = None,
                        beta: Optional[float] = None,
                        attempt: Optional[int] = None) -> None:
    """One intermediate-sampling proposal outcome.

    ``outcome`` ∈ {accepted, rejected, skipped_trace, skipped_certificate,
    direct}; escalations (beta doublings) are counted whenever a
    skip/rejection escalates the pool.  Recording never touches the
    sampler's random stream.
    """
    if _REGISTRY.enabled:
        _INTER_PROPOSALS.inc(outcome=outcome)
        if outcome in ("rejected", "skipped_trace", "skipped_certificate"):
            _INTER_ESCALATIONS.inc()
        if certificate is not None:
            _INTER_CERT.observe(certificate)
        if pool is not None:
            _INTER_POOL.observe(float(pool))
    if _TRACER.enabled:
        _TRACER.event("intermediate", outcome=outcome, certificate=certificate,
                      pool=pool, beta=beta, attempt=attempt)


def record_cluster_op(op: str, seconds: float) -> None:
    """One shard-node wire op handled in ``seconds``."""
    _SLO.observe_op(op, seconds)
    if not _REGISTRY.enabled:
        return
    _CLUSTER_REQUESTS.inc(op=op)
    _CLUSTER_OP_SECONDS.observe(seconds, op=op)


def record_kernel_update(kind: str, decision: str, depth: int,
                         seconds: Optional[float] = None) -> None:
    """One incremental kernel update applied by a registry/session.

    ``decision`` ∈ {patched, recomputed}: whether cached artifacts were
    carried over via the O(n·k)/O(n²) update identities or the planner's
    break-even policy (or an evicted predecessor) forced a cold
    refactorization.
    """
    if _REGISTRY.enabled:
        _KERNEL_UPDATES.inc(kind=kind, decision=decision)
        _UPDATE_DEPTH.observe(float(depth))
        if seconds is not None:
            _UPDATE_SECONDS.observe(seconds, decision=decision)
    if _TRACER.enabled:
        _TRACER.event("kernel_update", kind=kind, decision=decision,
                      depth=depth, seconds=seconds)


def record_update_delta(nbytes: int) -> None:
    """Delta payload size of one cluster-shipped kernel update."""
    if _REGISTRY.enabled:
        _UPDATE_DELTA_BYTES.observe(float(nbytes))


def record_failover(fingerprint: Optional[str] = None) -> None:
    """One client-side replica failover."""
    if _REGISTRY.enabled:
        _CLUSTER_FAILOVERS.inc()
    if _TRACER.enabled:
        _TRACER.event("failover", fingerprint=fingerprint)


# --------------------------------------------------------------------- #
# collectors: re-export cache/registry counters without double bookkeeping
# --------------------------------------------------------------------- #
_CACHES: "weakref.WeakSet" = weakref.WeakSet()
_KERNEL_REGISTRIES: "weakref.WeakSet" = weakref.WeakSet()


def register_cache(cache) -> None:
    """Track a FactorizationCache for the summed cache collector (weakref)."""
    _CACHES.add(cache)


def register_kernel_registry(kernel_registry) -> None:
    """Track a KernelRegistry for the registration-census collector."""
    _KERNEL_REGISTRIES.add(kernel_registry)


def _collect_caches() -> List[CollectedMetric]:
    """Sum CacheStats counters across live caches (reads attrs directly —
    no TTL sweeps, no lock contention beyond one dict read per cache)."""
    caches = list(_CACHES)
    if not caches:
        return []
    totals = {"hits": 0, "misses": 0, "evictions": 0, "size_evictions": 0,
              "expired": 0, "invalidations": 0, "update_patched": 0,
              "update_recomputed": 0}
    entries = 0
    for cache in caches:
        stats = cache.stats
        for key in totals:
            totals[key] += getattr(stats, key)
        entries += len(cache)
    rows = [
        CollectedMetric(
            name=f"repro_cache_{key}_total", kind="counter",
            help=f"Factorization-cache {key.replace('_', ' ')} (all caches)",
            samples=[({}, float(value))])
        for key, value in totals.items()
    ]
    rows.append(CollectedMetric(
        name="repro_cache_entries", kind="gauge",
        help="Resident factorization-cache entries (all caches)",
        samples=[({}, float(entries))]))
    return rows


def _collect_kernel_registries() -> List[CollectedMetric]:
    registries = list(_KERNEL_REGISTRIES)
    if not registries:
        return []
    registered = 0
    ephemeral = 0
    for kernel_registry in registries:
        census = kernel_registry.census()
        registered += census["registered"]
        ephemeral += census["ephemeral"]
    return [
        CollectedMetric(name="repro_registry_kernels", kind="gauge",
                        help="Registered kernels (all registries)",
                        samples=[({}, float(registered))]),
        CollectedMetric(name="repro_registry_ephemeral_kernels", kind="gauge",
                        help="Ephemeral registrations (all registries)",
                        samples=[({}, float(ephemeral))]),
    ]


def _collect_obs_internals() -> List[CollectedMetric]:
    """Tracer loss accounting, flight-recorder census, and SLO quantiles."""
    rows = [
        CollectedMetric(
            name="repro_tracer_dropped_spans_total", kind="counter",
            help="Trace records lost to ring-buffer overwrite",
            samples=[({}, float(_TRACER.dropped_spans))]),
        CollectedMetric(
            name="repro_flight_recorder_captures_total", kind="counter",
            help="Over-budget requests captured by the flight recorder",
            samples=[({}, float(_FLIGHT.captured_total))]),
    ]
    for name, kind, help_text, samples in _SLO.collect():
        rows.append(CollectedMetric(name=name, kind=kind, help=help_text,
                                    samples=samples))
    return rows


_REGISTRY.register_collector(_collect_caches)
_REGISTRY.register_collector(_collect_kernel_registries)
_REGISTRY.register_collector(_collect_obs_internals)
