"""Chrome trace-event export for tracer records and flight captures.

Converts the structured records kept by :class:`repro.obs.trace.Tracer`
(``type="span"`` request spans and ``type="round"`` engine rounds) into the
Chrome trace-event JSON format understood by ``chrome://tracing`` and
Perfetto: a list of ``"X"`` (complete) events with microsecond timestamps.

This module is deliberately pure — it imports nothing from the rest of
``repro`` (``repro.obs.__init__`` imports *it*), takes record lists as
arguments, and touches no global state, so it works identically on live
tracer output, flight-recorder captures, and records loaded back from a
``snapshot()`` JSON file.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = ["chrome_trace_events", "chrome_trace", "dump_chrome_trace"]


def _span_window(record: Dict[str, object]) -> Optional[Dict[str, float]]:
    """(start, duration) seconds for one record, or ``None`` if undated.

    Spans carry an explicit ``start``/``duration``; round records carry
    ``monotonic`` (the instant the round *finished*) and ``wall_time``, so
    their start is reconstructed as ``monotonic - wall_time``.
    """
    kind = record.get("type")
    if kind == "span":
        start = record.get("start")
        duration = record.get("duration")
        if isinstance(start, (int, float)) and isinstance(duration, (int, float)):
            return {"start": float(start), "duration": float(duration)}
        end = record.get("monotonic")
        if isinstance(end, (int, float)) and isinstance(duration, (int, float)):
            return {"start": float(end) - float(duration),
                    "duration": float(duration)}
        return None
    if kind == "round":
        end = record.get("monotonic")
        duration = record.get("wall_time")
        if isinstance(end, (int, float)) and isinstance(duration, (int, float)):
            return {"start": float(end) - float(duration),
                    "duration": float(duration)}
    return None


_ARG_SKIP = frozenset({"type", "monotonic", "start", "duration", "seq"})


def chrome_trace_events(records: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Convert tracer records into a list of Chrome ``"X"`` events.

    Timestamps are rebased so the earliest event starts at t=0 and emitted
    as integer microseconds.  Each distinct ``trace_id`` gets its own
    ``tid`` lane (first-seen order; untraced rounds share lane 0); ``pid``
    comes from a record's own ``pid`` field when present (process-pool
    worker spans) and defaults to 1.
    """
    timed: List[Dict[str, object]] = []
    windows: List[Dict[str, float]] = []
    for record in records:
        window = _span_window(record)
        if window is None:
            continue
        timed.append(record)
        windows.append(window)
    if not timed:
        return []

    origin = min(window["start"] for window in windows)
    lanes: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for record, window in zip(timed, windows):
        trace_id = record.get("trace_id")
        if isinstance(trace_id, str):
            tid = lanes.setdefault(trace_id, len(lanes) + 1)
        else:
            tid = 0
        pid = record.get("pid")
        if not isinstance(pid, int):
            pid = 1
        if record.get("type") == "round":
            name = str(record.get("label", "round"))
            category = "round"
        else:
            name = str(record.get("name", "span"))
            category = str(record.get("category", "span"))
        args = {key: value for key, value in record.items()
                if key not in _ARG_SKIP}
        events.append({
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": int(round((window["start"] - origin) * 1e6)),
            "dur": max(1, int(round(window["duration"] * 1e6))),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return events


def chrome_trace(records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """The full Chrome trace document for a record list."""
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }


def dump_chrome_trace(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Write a Chrome trace JSON file; returns the number of events."""
    document = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])  # type: ignore[arg-type]
