"""Measured-cost feedback: online correction of planner wall-clock pricing.

The planner prices every candidate backend for a round with a
:class:`~repro.pram.cost.CalibratedCostModel` whose
``WallClockCoefficients`` come from a one-shot probe at import time.  That
calibration drifts — thermal throttling, noisy neighbors, a different BLAS
— and drift goes straight into misrouted ``backend="auto"`` decisions.

:class:`ObservedCostFeedback` closes the loop.  After each planned round it
receives (predicted seconds, actual seconds) and folds the log-ratio into
an EWMA keyed by ``(backend, family, shape bucket)``; at pricing time the
planner multiplies each candidate's static estimate by
``correction(backend, family, queries)``.  Working in log space makes the
correction multiplicative and symmetric (a 2x underestimate and a 2x
overestimate pull equally hard), the clamp bounds the damage one wild
measurement can do, and bucketing query counts by powers of two keeps the
key space small while separating the regimes that price differently.

Determinism contract: feedback only rescales *predicted costs*, so it can
change which backend a round routes to but never the sampled values —
every backend is seed-identical by the engine's core invariant.  It is off
by default and carries its own switch, separate from metrics/tracing, so
observability can be on while routing stays static.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Tuple

__all__ = ["ObservedCostFeedback", "shape_bucket"]


def shape_bucket(queries: int) -> int:
    """Bucket a batch width to the next power of two (1, 2, 4, ... 1024...)."""
    q = max(1, int(queries))
    return 1 << (q - 1).bit_length()


class ObservedCostFeedback:
    """EWMA correction of predicted round cost, keyed by routing regime.

    ``alpha`` is the EWMA weight of each new observation; the first
    observation for a key seeds the state directly so one mispriced regime
    is corrected after a single measured round rather than asymptotically.
    ``clamp`` bounds the multiplicative correction to ``[1/clamp, clamp]``.
    """

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_state",)}

    def __init__(self, alpha: float = 0.25, clamp: float = 64.0,
                 enabled: bool = False):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if clamp < 1.0:
            raise ValueError("clamp must be >= 1")
        self.alpha = float(alpha)
        self.clamp = float(clamp)
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        # key -> (ewma of log(actual/predicted), observation count)
        self._state: Dict[Tuple[str, str, int], Tuple[float, int]] = {}

    # ------------------------------------------------------------------ #
    def observe(self, backend: str, family: str, queries: int,
                predicted_seconds: float, actual_seconds: float) -> None:
        """Fold one measured round into the correction for its regime."""
        if not self.enabled:
            return
        if predicted_seconds <= 0.0 or actual_seconds <= 0.0:
            return
        log_ratio = math.log(actual_seconds / predicted_seconds)
        bound = math.log(self.clamp)
        log_ratio = max(-bound, min(bound, log_ratio))
        key = (str(backend), str(family), shape_bucket(queries))
        with self._lock:
            state = self._state.get(key)
            if state is None:
                self._state[key] = (log_ratio, 1)
            else:
                ewma, count = state
                ewma += self.alpha * (log_ratio - ewma)
                self._state[key] = (ewma, count + 1)

    def correction(self, backend: str, family: str, queries: int) -> float:
        """Multiplier for a candidate's predicted seconds; 1.0 when unknown."""
        if not self.enabled:
            return 1.0
        key = (str(backend), str(family), shape_bucket(queries))
        with self._lock:
            state = self._state.get(key)
        if state is None:
            return 1.0
        factor = math.exp(state[0])
        return max(1.0 / self.clamp, min(self.clamp, factor))

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of every learned correction."""
        with self._lock:
            items = list(self._state.items())
        corrections = [
            {"backend": backend, "family": family, "shape_bucket": bucket,
             "correction": math.exp(ewma), "observations": count}
            for (backend, family, bucket), (ewma, count) in sorted(items)
        ]
        return {"enabled": self.enabled, "alpha": self.alpha,
                "clamp": self.clamp, "corrections": corrections}

    def reset(self) -> None:
        with self._lock:
            self._state.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._state)
