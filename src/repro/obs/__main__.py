"""``python -m repro.obs`` — dump observability state without writing code.

Subcommands:

``snapshot``
    The full :func:`repro.obs.snapshot` JSON (metrics + trace records +
    SLO quantiles + flight-recorder census) to stdout or ``--out``.
``prom``
    :func:`repro.obs.render_prometheus` text exposition.
``trace``
    Chrome trace-event JSON (open in ``chrome://tracing`` / Perfetto) built
    from the live tracer, a prior ``snapshot`` file (``--in``), or the
    flight recorder's slowest capture (``--flight``).

Each subcommand accepts ``--demo``: run a small pinned fused-drain workload
first (tracing + SLO on, flight recorder armed at budget 0 so every request
captures) so bench scripts and CI can produce real artifacts from a bare
checkout.  The demo is fully seeded — ids and samples are deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import obs


def _run_demo() -> None:
    """A pinned fused-drain workload that exercises every tracing path."""
    import numpy as np

    import repro

    rng = np.random.default_rng(12345)
    factor = rng.standard_normal((48, 8))
    matrix = factor @ factor.T
    obs.enable(trace=True, slo=True, flight_budget=0.0)
    session = repro.serve(matrix)
    try:
        scheduler = session.scheduler(seed=7)
        for _ in range(6):
            scheduler.submit(4)
        scheduler.drain()
        session.sample(3, seed=11)
    finally:
        session.close()


def _emit(text: str, out: Optional[str]) -> None:
    if out is None:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
        return
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if args.demo:
        _run_demo()
    _emit(json.dumps(obs.snapshot(), indent=1, sort_keys=True), args.out)
    return 0


def _cmd_prom(args: argparse.Namespace) -> int:
    if args.demo:
        _run_demo()
    _emit(obs.render_prometheus(), args.out)
    return 0


def _trace_records(args: argparse.Namespace) -> List[dict]:
    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        records = loaded.get("trace", {}).get("records", [])
        if not isinstance(records, list):
            raise SystemExit(f"{args.input}: no trace records found")
        return records
    if args.flight:
        captures = obs.flight_recorder().captures()
        if not captures:
            raise SystemExit("flight recorder holds no captures")
        slowest = max(captures, key=lambda entry: entry["duration"])
        return list(slowest["records"])
    return obs.tracer().records()


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.demo:
        _run_demo()
    document = obs.chrome_trace(_trace_records(args))
    _emit(json.dumps(document, indent=1, sort_keys=True), args.out)
    if args.out is not None:
        events = len(document["traceEvents"])
        sys.stderr.write(f"wrote {events} trace events to {args.out}\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Dump repro observability state (JSON / Prometheus / "
                    "Chrome trace).")
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in (
        ("snapshot", _cmd_snapshot, "full snapshot() JSON"),
        ("prom", _cmd_prom, "Prometheus text exposition"),
        ("trace", _cmd_trace, "Chrome trace-event JSON"),
    ):
        sub = commands.add_parser(name, help=doc)
        sub.set_defaults(handler=handler)
        sub.add_argument("--demo", action="store_true",
                         help="run the pinned demo workload first "
                              "(tracing + SLO on, flight recorder armed)")
        sub.add_argument("--out", default=None,
                         help="write to this file instead of stdout")
        if name == "trace":
            sub.add_argument("--in", dest="input", default=None,
                             help="read records from a prior snapshot JSON "
                                  "file instead of the live tracer")
            sub.add_argument("--flight", action="store_true",
                             help="export the flight recorder's slowest "
                                  "capture instead of the live tracer")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
