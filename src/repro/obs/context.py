"""Deterministic trace-context propagation for request-scoped tracing.

A :class:`TraceContext` names one span's place in one request's tree:
``trace_id`` (shared by every span of the request), ``span_id`` (this
span), ``parent_id`` (the enclosing span, ``None`` at the root).  Ids come
from a process-wide **seeded counter** — never wall-clock time and never
:mod:`random` — so tracing stays invisible to the R1 determinism lint and
can never perturb a sampler's randomness.  Cross-process uniqueness (worker
chunks report spans back from other interpreters) is hierarchical: a worker
span's id is ``f"{parent_span_id}.w{chunk_index}"``, unique as long as the
parent id is.

Propagation uses a :class:`~contextvars.ContextVar`: :func:`activate`
scopes a context to a ``with`` block, :func:`current_context` reads the
active one.  Thread pools and raw ``threading.Thread`` targets do **not**
inherit context vars — code that hops threads (the scheduler's per-ticket
threads, shard-node handlers) re-activates an explicitly carried context,
and the wire/payload form is the plain dict of :meth:`TraceContext.as_wire`.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TraceContext",
    "Span",
    "current_context",
    "activate",
    "context_from_wire",
    "next_trace_id",
    "next_span_id",
    "reset_ids",
]


class _IdAllocator:
    """Monotone id source: deterministic, seedable, thread-safe."""

    #: concurrency contract, enforced by ``repro.analysis`` (R2 + race harness)
    _GUARDED_BY = {"_lock": ("_next",)}

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self._next = int(seed)

    def allocate(self, prefix: str) -> str:
        with self._lock:
            value = self._next
            self._next += 1
        return f"{prefix}{value:08x}"

    def reset(self, seed: int = 0) -> None:
        with self._lock:
            self._next = int(seed)


_IDS = _IdAllocator()


def next_trace_id() -> str:
    """A fresh ``t........`` trace id from the seeded counter."""
    return _IDS.allocate("t")


def next_span_id() -> str:
    """A fresh ``s........`` span id from the seeded counter."""
    return _IDS.allocate("s")


def reset_ids(seed: int = 0) -> None:
    """Rewind the id counter (``repro.obs.reset()`` calls this)."""
    _IDS.reset(seed)


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within one request's trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A fresh child context under this span."""
        return TraceContext(trace_id=self.trace_id, span_id=next_span_id(),
                            parent_id=self.span_id)

    def as_wire(self) -> Dict[str, str]:
        """JSON/pickle-safe form for protocol frames and worker payloads."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def context_from_wire(payload: object) -> Optional["TraceContext"]:
    """Rebuild a :class:`TraceContext` from its wire dict (``None``-tolerant).

    The wire form carries no ``parent_id`` — the shipped span *is* the
    parent of whatever the receiving side opens under it.
    """
    if not isinstance(payload, dict):
        return None
    trace_id = payload.get("trace_id")
    span_id = payload.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """A live (not yet recorded) span handle; see ``repro.obs.start_span``.

    Mutable scratch owned by the opening thread until ``end_span`` records
    it into the tracer — no lock needed.
    """

    context: TraceContext
    name: str
    category: str
    start: float
    family: Optional[str] = None
    links: Optional[List[Dict[str, str]]] = None
    attrs: Dict[str, object] = field(default_factory=dict)


def new_context(parent: Optional[TraceContext] = None) -> TraceContext:
    """A child of ``parent``, or a fresh root context when ``parent`` is None."""
    if parent is not None:
        return parent.child()
    return TraceContext(trace_id=next_trace_id(), span_id=next_span_id(),
                        parent_id=None)


_ACTIVE: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "repro_trace_context", default=None)


def current_context() -> Optional[TraceContext]:
    """The trace context active on this thread/task (``None`` untraced)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[None]:
    """Scope ``context`` to the block; ``None`` is a no-op (keeps call sites
    branch-free when tracing is off)."""
    if context is None:
        yield
        return
    token = _ACTIVE.set(context)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
