"""Simulated parallel scheduling helpers.

These helpers execute Python callables sequentially on the host CPU while
charging the PRAM tracker as if they had run concurrently:

* :func:`parallel_map` — run ``fn`` over ``items`` as one batch of machines in
  a single adaptive round.
* :func:`parallel_branches` — run several independent *recursive* computations
  (each with its own tracker) and merge their depth as a maximum, the way the
  planar separator sampler of Theorem 11 recurses on disconnected components.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.pram.tracker import Tracker, current_tracker, use_tracker

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(fn: Callable[[T], R], items: Sequence[T], *, tracker: Tracker = None,
                 label: str = "parallel_map") -> List[R]:
    """Apply ``fn`` to every item, charging one adaptive round of depth.

    The work charged is whatever ``fn`` itself charges through the current
    tracker (e.g. determinant evaluations); the number of machines is at least
    ``len(items)``.
    """
    trk = tracker if tracker is not None else current_tracker()
    results: List[R] = []
    with trk.round(label):
        trk.charge(machines=float(len(items)))
        for item in items:
            results.append(fn(item))
    return results


def parallel_branches(branch_fns: Iterable[Callable[[], R]], *, tracker: Tracker = None,
                      label: str = "parallel_branches") -> List[R]:
    """Execute independent branches "in parallel".

    Each branch runs with its own child tracker; afterwards the parent tracker
    absorbs ``max`` of the branch depths and the sum of their work — exactly
    the PRAM cost of running the branches concurrently on disjoint machine
    pools.
    """
    trk = tracker if tracker is not None else current_tracker()
    results: List[R] = []
    children: List[Tracker] = []
    for fn in branch_fns:
        child = trk.spawn()
        with use_tracker(child):
            results.append(fn())
        children.append(child)
    trk.merge_parallel(children)
    return results
