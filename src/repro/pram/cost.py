"""Cost model describing how primitives are charged to the PRAM accounting.

The paper charges (Proposition 13, [Csa75], [Ber84]):

* a determinant / characteristic polynomial of an ``n x n`` matrix:
  ``Õ(1)`` parallel depth, ``poly(n)`` work;
* a *batch* of independent counting-oracle queries issued in the same adaptive
  round: 1 round of depth total, work proportional to the number of queries;
* one step of the sequential sampling-to-counting reduction: 1 round.

:class:`CostModel` centralizes the work polynomials so they can be swapped (for
ablations) without touching samplers.  ``Õ(·)`` hides polylog factors; by
default we charge ``n**omega`` work per determinant with ``omega = 3`` (the
work of the Faddeev–LeVerrier scheme is ``O(n^4)``; Csanky-style inversion can
be done with ``O(n^omega)`` processors — the exponent does not affect any of
the *depth* claims the experiments reproduce).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RoundCharge:
    """Charges accumulated by a single adaptive round."""

    depth: int = 1
    work: float = 0.0
    machines: float = 0.0
    oracle_calls: int = 0


@dataclass(frozen=True)
class OracleCostHint:
    """Structural cost facts a distribution reports about its oracle batches.

    The engine's :class:`~repro.engine.planner.RoundPlanner` combines this
    hint with the PRAM :class:`CostModel` and calibrated wall-clock
    coefficients to estimate what one batch costs on each execution backend.
    The hint states *structure*, not seconds — seconds are host-specific and
    come from calibration.

    Attributes
    ----------
    matrix_order:
        Size of the matrix each query factorizes (the ``n`` fed to
        :meth:`CostModel.determinant_work`).
    python_fraction:
        Fraction of one query's work spent in GIL-bound interpreted Python
        (ESP recursions, charpoly minor sums, per-subset interpolation
        grids) rather than inside GIL-releasing LAPACK calls.  ``0`` means
        pure stacked linear algebra; ``1`` means a pure-Python loop.
    batch_vectorized:
        Whether ``counting_batch`` answers the whole round with stacked
        NumPy calls (``True`` for the structured oracles) or falls back to
        the generic scalar loop (``False``), in which case the vectorized
        backend degenerates to the serial one.
    rank:
        When set, the oracle works on a rank-``rank`` factorization of the
        ``matrix_order``-sized kernel rather than the dense matrix: a query
        costs ``n·r² + r^ω`` work (reduce to the ``r x r`` dual Gram, then
        factorize it) instead of ``n^ω``.  ``None`` means dense.
    update_depth:
        Length of the incremental-update chain behind this kernel's cached
        artifacts (``0`` for a cold factorization).  Dense artifacts patched
        through the secular equation accumulate ``O(ε)`` rounding per patch,
        so past the break-even depth
        (:meth:`CalibratedCostModel.update_break_even_depth`) the planner
        prefers a fresh refactorization — the cumulative patch work has paid
        for one by then, making the refresh amortized-free.
    """

    matrix_order: int
    python_fraction: float = 0.0
    batch_vectorized: bool = True
    rank: Optional[int] = None
    update_depth: int = 0


@dataclass(frozen=True)
class CostModel:
    """Work/depth charge schedule for PRAM primitives.

    Attributes
    ----------
    determinant_exponent:
        Work of one ``n x n`` determinant / marginal-kernel evaluation is
        ``n ** determinant_exponent``.
    determinant_depth:
        Parallel depth charged for one determinant evaluation.  The paper
        treats this as ``Õ(1)``; we charge ``1`` so that "rounds" directly
        measures the number of *adaptive* stages, the quantity all theorems
        bound.
    oracle_depth:
        Depth of one batched block of counting-oracle queries (``Õ(1)``).
    """

    determinant_exponent: float = 3.0
    determinant_depth: int = 1
    oracle_depth: int = 1

    def determinant_work(self, n: int) -> float:
        """Work charged for a determinant of an ``n x n`` matrix."""
        return float(max(n, 1)) ** self.determinant_exponent

    def oracle_query_work(self, n: int, queries: int = 1) -> float:
        """Work charged for ``queries`` independent counting-oracle queries."""
        return queries * self.determinant_work(n)


DEFAULT_COST_MODEL = CostModel()


# ---------------------------------------------------------------------- #
# wall-clock extension: abstract work units -> estimated seconds
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WallClockCoefficients:
    """Host-specific conversion rates from PRAM work units to seconds.

    ``seconds_per_flop_unit`` prices one unit of :meth:`CostModel`
    determinant work executed inside LAPACK; ``seconds_per_python_unit``
    prices the same unit executed as GIL-bound interpreted Python;
    ``seconds_per_shipped_byte`` prices moving one payload byte out of
    process (content fingerprint + shared-memory copy, the dominant costs of
    :meth:`repro.engine.shm.SharedArrayStore.publish`) so wide matrix-backed
    rounds charge their first-shipment publication explicitly.  All are
    measured by :func:`calibrate_wall_clock` (microbenchmarks, once per
    process) — the absolute values are crude, but routing decisions only
    need the *ratios* between backends to be roughly right, and those are
    dominated by the separately measured per-backend dispatch overheads.
    """

    seconds_per_flop_unit: float = 2e-9
    seconds_per_python_unit: float = 2e-7
    seconds_per_shipped_byte: float = 1e-9


@dataclass(frozen=True)
class CalibratedCostModel(CostModel):
    """A :class:`CostModel` that can also price work in estimated seconds.

    The PRAM model prices *work* in abstract machine operations — exactly
    what the depth/work theorems need, and deliberately blind to wall-clock.
    The execution planner, however, must compare "run this round's Python
    work in-process" against "pay a process pool's IPC round-trip", which is
    a *seconds* comparison.  This subclass keeps the PRAM charging schedule
    untouched (trackers built from it behave identically) and adds the
    calibrated conversion used only for backend routing.
    """

    coefficients: WallClockCoefficients = field(default_factory=WallClockCoefficients)

    def _query_flop_unit(self, hint: OracleCostHint) -> float:
        """Work units of one query's LAPACK lane under ``hint``'s structure.

        Dense oracles pay the full ``n^ω`` determinant; a rank-``r``
        factor-backed oracle pays ``n·r² + r^ω`` (reduce to the dual Gram,
        factorize the ``r x r`` reduction) — the asymmetry that makes the
        planner route huge-``n`` low-rank rounds as cheap ones.
        """
        if hint.rank is not None:
            n = float(max(hint.matrix_order, 1))
            r = max(int(hint.rank), 1)
            return n * r * r + self.determinant_work(r)
        return self.determinant_work(hint.matrix_order)

    # ------------------------------------------------------------------ #
    # incremental-update pricing (streaming kernels)
    # ------------------------------------------------------------------ #
    def update_patch_work(self, hint: OracleCostHint) -> float:
        """Work units of patching cached artifacts after ONE rank-1 update.

        Dense: the secular eigen-update and Sherman–Morrison kernel patch
        are ``O(n²)`` apiece (the eigenvector column transform is a matmul,
        far below ``eigh``'s constant).  Factor-backed: row append/delete on
        the factor plus recomputing the ``k``-sized artifacts, ``n·r² + r^ω``.
        """
        n = float(max(hint.matrix_order, 1))
        if hint.rank is not None:
            r = max(int(hint.rank), 1)
            return n * r * r + self.determinant_work(r)
        return n * n

    def refactorization_work(self, hint: OracleCostHint) -> float:
        """Work units of rebuilding the factorization cold after a mutation."""
        return self._query_flop_unit(hint)

    def update_break_even_depth(self, hint: OracleCostHint, *,
                                cap: int = 64) -> int:
        """Update-log depth past which a fresh refactorization is preferred.

        Dense spectra patched through the secular equation accumulate
        ``O(ε)`` rounding per patch; once the *cumulative* patch work rivals
        one cold factorization (``≈ n`` patches of ``n²`` against one
        ``n³``), a refresh is amortized-free and resets the drift, so that
        ratio — capped at ``cap`` for chain hygiene — is the break-even.
        Factor-backed patches are *exact* (row append/delete on ``B``), so
        they never need a drift refresh and run straight to the cap.
        """
        limit = max(int(cap), 1)
        if hint.rank is not None:
            return limit
        patch = self.update_patch_work(hint)
        refactor = self.refactorization_work(hint)
        return max(1, min(limit, int(refactor / max(patch, 1.0))))

    def _python_work(self, hint: OracleCostHint, queries: int) -> float:
        """Work units of the batch's GIL-bound (interpreted Python) lane.

        When the batch oracle vectorizes, the interpreted share is the
        per-query bookkeeping around the stacked LAPACK calls — one order
        below the flop work, so it is priced at ``matrix_order^(omega-1)``
        for dense oracles and ``matrix_order·rank`` for factor-backed ones.
        A non-vectorized (generic scalar-loop) oracle keeps its full flop
        unit in the interpreter.
        """
        fraction = min(max(hint.python_fraction, 0.0), 1.0)
        if hint.batch_vectorized:
            if hint.rank is not None:
                unit = float(max(hint.matrix_order, 1)) * max(int(hint.rank), 1)
            else:
                exponent = max(self.determinant_exponent - 1.0, 1.0)
                unit = float(max(hint.matrix_order, 1)) ** exponent
        else:
            unit = self._query_flop_unit(hint)
        return queries * unit * fraction

    def estimate_batch_seconds(self, hint: OracleCostHint, queries: int) -> float:
        """Estimated single-lane seconds to answer ``queries`` oracle queries.

        Splits the batch between the LAPACK lane (the
        ``(1 - python_fraction)`` share of the structural flop work) and
        the interpreted-Python lane (see :meth:`_python_work`), pricing each
        with its calibrated coefficient.
        """
        fraction = min(max(hint.python_fraction, 0.0), 1.0)
        flop_work = queries * self._query_flop_unit(hint) * (1.0 - fraction)
        return (self._python_work(hint, queries) * self.coefficients.seconds_per_python_unit
                + flop_work * self.coefficients.seconds_per_flop_unit)

    def python_seconds(self, hint: OracleCostHint, queries: int) -> float:
        """Estimated seconds of the batch's GIL-bound (Python-lane) share."""
        return self._python_work(hint, queries) * self.coefficients.seconds_per_python_unit

    def shipping_seconds(self, nbytes: int) -> float:
        """Estimated seconds to publish ``nbytes`` of payload out of process."""
        return max(int(nbytes), 0) * self.coefficients.seconds_per_shipped_byte


def _probe_flop_seconds_per_unit(model: CostModel, order: int = 48, repeats: int = 3) -> float:
    """Seconds per determinant-work unit through one LAPACK factorization."""
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.standard_normal((order, order))
    a = a @ a.T + order * np.eye(order)
    np.linalg.slogdet(a)  # warm the LAPACK path once
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        np.linalg.slogdet(a)
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9) / model.determinant_work(order)


def _probe_python_seconds_per_unit(model: CostModel, order: int = 24, repeats: int = 3) -> float:
    """Seconds per work unit through an interpreted (GIL-bound) loop.

    The loop mimics the shape of the pure-Python oracle paths (per-element
    arithmetic over an ``order``-sized recursion) so the coefficient lands in
    the right decade for ESP tables / charpoly sums / interpolation grids.
    """
    best = float("inf")
    steps = int(model.determinant_work(order))
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0.0
        for i in range(steps):
            acc += (i % 7) * 1e-3
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9) / model.determinant_work(order)


def _probe_ship_seconds_per_byte(nbytes: int = 1 << 18, repeats: int = 3) -> float:
    """Seconds per byte of one out-of-process payload publication.

    Publication = content fingerprint (SHA-256 over the raw bytes) + one
    copy into the shared-memory segment; the probe times exactly those two
    operations on a ``nbytes`` buffer, so the coefficient tracks the real
    :meth:`~repro.engine.shm.SharedArrayStore.publish` cost without touching
    ``/dev/shm`` (which may be unavailable where calibration still runs).
    """
    import numpy as np

    from repro.utils.fingerprint import array_fingerprint

    buffer = np.zeros(nbytes // 8, dtype=float)
    target = np.empty_like(buffer)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        array_fingerprint(buffer)
        np.copyto(target, buffer)
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9) / buffer.nbytes


#: per-process probe cache, keyed by the work exponent the probes were
#: normalized under — coefficients measured for one schedule are meaningless
#: for a model with a different ``determinant_exponent``
_CALIBRATED: dict = {}


def calibrate_wall_clock(model: CostModel = DEFAULT_COST_MODEL, *,
                         refresh: bool = False) -> WallClockCoefficients:
    """Measure (once per process and work schedule) work-unit → seconds rates.

    The probes cost a few milliseconds and are cached for the process
    lifetime per ``determinant_exponent``; ``refresh=True`` re-measures
    (e.g. after pinning BLAS threads).  Used by
    :func:`calibrated_cost_model` and the engine's
    :class:`~repro.engine.planner.RoundPlanner`.
    """
    key = float(model.determinant_exponent)
    if refresh or key not in _CALIBRATED:
        _CALIBRATED[key] = WallClockCoefficients(
            seconds_per_flop_unit=_probe_flop_seconds_per_unit(model),
            seconds_per_python_unit=_probe_python_seconds_per_unit(model),
            seconds_per_shipped_byte=_probe_ship_seconds_per_byte(),
        )
    return _CALIBRATED[key]


def calibrated_cost_model(model: CostModel = DEFAULT_COST_MODEL) -> CalibratedCostModel:
    """``model`` extended with this host's calibrated wall-clock coefficients.

    Passing an already-:class:`CalibratedCostModel` returns it unchanged, so
    callers can thread a hand-built model (e.g. in tests) through the
    planner without it being re-calibrated.
    """
    if isinstance(model, CalibratedCostModel):
        return model
    return CalibratedCostModel(
        determinant_exponent=model.determinant_exponent,
        determinant_depth=model.determinant_depth,
        oracle_depth=model.oracle_depth,
        coefficients=calibrate_wall_clock(model),
    )
