"""Cost model describing how primitives are charged to the PRAM accounting.

The paper charges (Proposition 13, [Csa75], [Ber84]):

* a determinant / characteristic polynomial of an ``n x n`` matrix:
  ``Õ(1)`` parallel depth, ``poly(n)`` work;
* a *batch* of independent counting-oracle queries issued in the same adaptive
  round: 1 round of depth total, work proportional to the number of queries;
* one step of the sequential sampling-to-counting reduction: 1 round.

:class:`CostModel` centralizes the work polynomials so they can be swapped (for
ablations) without touching samplers.  ``Õ(·)`` hides polylog factors; by
default we charge ``n**omega`` work per determinant with ``omega = 3`` (the
work of the Faddeev–LeVerrier scheme is ``O(n^4)``; Csanky-style inversion can
be done with ``O(n^omega)`` processors — the exponent does not affect any of
the *depth* claims the experiments reproduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundCharge:
    """Charges accumulated by a single adaptive round."""

    depth: int = 1
    work: float = 0.0
    machines: float = 0.0
    oracle_calls: int = 0


@dataclass(frozen=True)
class CostModel:
    """Work/depth charge schedule for PRAM primitives.

    Attributes
    ----------
    determinant_exponent:
        Work of one ``n x n`` determinant / marginal-kernel evaluation is
        ``n ** determinant_exponent``.
    determinant_depth:
        Parallel depth charged for one determinant evaluation.  The paper
        treats this as ``Õ(1)``; we charge ``1`` so that "rounds" directly
        measures the number of *adaptive* stages, the quantity all theorems
        bound.
    oracle_depth:
        Depth of one batched block of counting-oracle queries (``Õ(1)``).
    """

    determinant_exponent: float = 3.0
    determinant_depth: int = 1
    oracle_depth: int = 1

    def determinant_work(self, n: int) -> float:
        """Work charged for a determinant of an ``n x n`` matrix."""
        return float(max(n, 1)) ** self.determinant_exponent

    def oracle_query_work(self, n: int, queries: int = 1) -> float:
        """Work charged for ``queries`` independent counting-oracle queries."""
        return queries * self.determinant_work(n)


DEFAULT_COST_MODEL = CostModel()
