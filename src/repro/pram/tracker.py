"""Depth/work tracker implementing the PRAM accounting.

A :class:`Tracker` accumulates

* ``rounds`` — the number of adaptive parallel rounds (the paper's "parallel
  time" up to ``Õ(1)`` factors inside each round),
* ``work`` — total operations across all simulated machines,
* ``oracle_calls`` — number of counting-oracle queries issued,
* ``peak_machines`` — the largest number of machines used in any single round.

Samplers open rounds with :meth:`Tracker.round`; everything charged inside a
``with tracker.round():`` block counts as one unit of parallel depth no matter
how many independent queries it contains.  Nested rounds inside an open round
do **not** add extra depth (they model the ``Õ(1)``-depth subroutines run by
the machines of that round).

A module-level *current tracker* (:func:`current_tracker`) lets low-level
oracles charge costs without having a tracker threaded through every call
signature; samplers install their tracker with :func:`use_tracker`.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.pram.cost import CostModel, DEFAULT_COST_MODEL


@dataclass
class RoundRecord:
    """Summary of a single adaptive round (used for traces/tests)."""

    label: str
    work: float = 0.0
    machines: float = 0.0
    oracle_calls: int = 0


class Tracker:
    """Accumulates PRAM depth and work for one sampler execution."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL, *, record_rounds: bool = False):
        self.cost_model = cost_model
        self.rounds: int = 0
        self.work: float = 0.0
        self.oracle_calls: int = 0
        self.peak_machines: float = 0.0
        self._round_depth: int = 0
        self._record_rounds = record_rounds
        self.round_log: List[RoundRecord] = []
        self._active_record: Optional[RoundRecord] = None

    # ------------------------------------------------------------------ #
    # round management
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def round(self, label: str = "round") -> Iterator["Tracker"]:
        """Open one adaptive round.

        Charges exactly one unit of parallel depth at the outermost nesting
        level; inner rounds are absorbed (they represent the ``Õ(1)``-depth
        subroutines executed by the machines working in this round).
        """
        outermost = self._round_depth == 0
        self._round_depth += 1
        record = None
        if outermost:
            self.rounds += 1
            if self._record_rounds:
                record = RoundRecord(label=label)
                self.round_log.append(record)
                self._active_record = record
        try:
            yield self
        finally:
            self._round_depth -= 1
            if outermost:
                self._active_record = None

    def add_rounds(self, count: int) -> None:
        """Charge ``count`` rounds of depth directly (used when merging
        recursive branches executed in parallel)."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        self.rounds += int(count)

    # ------------------------------------------------------------------ #
    # charging primitives
    # ------------------------------------------------------------------ #
    def charge(self, *, work: float = 0.0, machines: float = 0.0, oracle_calls: int = 0) -> None:
        """Charge work/machines/oracle-calls to the current round."""
        self.work += float(work)
        self.oracle_calls += int(oracle_calls)
        if machines > self.peak_machines:
            self.peak_machines = float(machines)
        if self._active_record is not None:
            self._active_record.work += float(work)
            self._active_record.oracle_calls += int(oracle_calls)
            self._active_record.machines = max(self._active_record.machines, float(machines))

    def charge_determinant(self, n: int, count: int = 1) -> None:
        """Charge ``count`` independent determinant evaluations on ``n x n``
        matrices (one batched ``Õ(1)``-depth block)."""
        work = count * self.cost_model.determinant_work(n)
        self.charge(work=work, machines=float(count), oracle_calls=count)

    def charge_oracle(self, n: int, queries: int = 1) -> None:
        """Charge ``queries`` independent counting-oracle queries."""
        self.charge(
            work=self.cost_model.oracle_query_work(n, queries),
            machines=float(queries),
            oracle_calls=queries,
        )

    # ------------------------------------------------------------------ #
    # merging parallel branches (recursive samplers, e.g. Theorem 11)
    # ------------------------------------------------------------------ #
    def spawn(self) -> "Tracker":
        """Create a child tracker for a parallel branch."""
        return Tracker(self.cost_model, record_rounds=False)

    def merge_parallel(self, branches: List["Tracker"]) -> None:
        """Merge branch trackers executed *in parallel*: depth is the max of
        the branch depths, work/oracle-calls are summed, machines are summed
        (all branches are simultaneously active)."""
        if not branches:
            return
        self.add_rounds(max(b.rounds for b in branches))
        self.work += sum(b.work for b in branches)
        self.oracle_calls += sum(b.oracle_calls for b in branches)
        combined_machines = sum(max(b.peak_machines, 1.0) for b in branches)
        if combined_machines > self.peak_machines:
            self.peak_machines = combined_machines

    def merge_sequential(self, branch: "Tracker") -> None:
        """Merge a branch executed *after* the current work (depths add)."""
        self.add_rounds(branch.rounds)
        self.work += branch.work
        self.oracle_calls += branch.oracle_calls
        if branch.peak_machines > self.peak_machines:
            self.peak_machines = branch.peak_machines

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Dictionary summary (used in :class:`repro.core.result.SamplerReport`)."""
        return {
            "rounds": self.rounds,
            "work": self.work,
            "oracle_calls": self.oracle_calls,
            "peak_machines": self.peak_machines,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracker(rounds={self.rounds}, work={self.work:.3g}, "
            f"oracle_calls={self.oracle_calls}, peak_machines={self.peak_machines:.3g})"
        )


# ---------------------------------------------------------------------- #
# current-tracker plumbing
# ---------------------------------------------------------------------- #
_NULL_TRACKER = Tracker()
_current: ContextVar[Tracker] = ContextVar("repro_current_tracker", default=_NULL_TRACKER)


def null_tracker() -> Tracker:
    """The shared sink tracker used when no sampler installed one."""
    return _NULL_TRACKER


def current_tracker() -> Tracker:
    """Return the tracker installed by the innermost :func:`use_tracker`."""
    return _current.get()


@contextlib.contextmanager
def use_tracker(tracker: Tracker) -> Iterator[Tracker]:
    """Install ``tracker`` as the current tracker for the enclosed block."""
    token = _current.set(tracker)
    try:
        yield tracker
    finally:
        _current.reset(token)
