"""PRAM cost-model substrate.

The paper states its guarantees in the PRAM model: *parallel time* is the
number of adaptive rounds (each round may issue polynomially many independent
counting-oracle queries / linear-algebra calls that are themselves ``Õ(1)``
parallel depth), and *work* is the total number of machine-operations.

We do not run on a PRAM — all computation executes on the host CPU — but every
sampler in :mod:`repro.core` and :mod:`repro.planar` charges its operations to
a :class:`~repro.pram.tracker.Tracker`, reproducing the accounting the
theorems speak about.  Benchmarks then compare *measured rounds* of the
parallel samplers against sequential baselines, which is exactly the quantity
Theorem 1/8/9/10/11 bound.
"""

from repro.pram.cost import (
    CalibratedCostModel,
    CostModel,
    OracleCostHint,
    RoundCharge,
    WallClockCoefficients,
    calibrate_wall_clock,
    calibrated_cost_model,
)
from repro.pram.tracker import Tracker, current_tracker, use_tracker, null_tracker
from repro.pram.schedule import parallel_map, parallel_branches

__all__ = [
    "CalibratedCostModel",
    "CostModel",
    "OracleCostHint",
    "RoundCharge",
    "WallClockCoefficients",
    "calibrate_wall_clock",
    "calibrated_cost_model",
    "Tracker",
    "current_tracker",
    "use_tracker",
    "null_tracker",
    "parallel_map",
    "parallel_branches",
]
