"""Random number generator helpers.

Every stochastic routine in the library accepts a ``seed`` argument that may be
``None``, an integer, or an existing :class:`numpy.random.Generator`.  Routing
everything through :func:`as_generator` keeps experiments reproducible and lets
callers share a single generator across composed samplers.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list:
    """Create ``count`` statistically independent child generators.

    Used to model independent parallel machines: each simulated machine gets
    its own stream so results do not depend on scheduling order.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def substream_seed(seed: SeedLike, index: int) -> np.random.SeedSequence:
    """The (picklable) seed of child stream ``index`` of a root seed.

    This is :func:`substream`'s derivation without the generator around it —
    the single definition both the local :class:`~repro.service.scheduler.RoundScheduler`
    (via :func:`substream`) and the cluster session's wire-shipped request
    seeds rely on; if the derivation ever changed in one place only, fused
    cluster drains would silently stop being byte-identical to local ones.
    """
    if index < 0:
        raise ValueError(f"index must be nonnegative, got {index}")
    if seed is None or isinstance(seed, np.random.Generator):
        raise TypeError(
            "substream requires a reproducible root seed (int or SeedSequence); "
            f"got {type(seed).__name__} which would not be re-derivable"
        )
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return np.random.SeedSequence(
        entropy=seq.entropy,
        spawn_key=tuple(seq.spawn_key) + (index,),
    )


def substream(seed: SeedLike, index: int) -> np.random.Generator:
    """Deterministic, addressable child stream ``index`` of a root seed.

    Unlike :func:`spawn_generators` (which must materialize all children up
    front), ``substream(root, i)`` can be evaluated independently per request
    and always yields ``SeedSequence(root).spawn(i + 1)[i]`` — the serving
    layer uses this to give each concurrently submitted sample request its own
    stream so fused execution order never changes any request's draws.
    """
    return np.random.default_rng(substream_seed(seed, index))
