"""Shared utilities: RNG handling, subset helpers, argument validation."""

from repro.utils.fingerprint import array_fingerprint, matrix_fingerprint
from repro.utils.rng import as_generator, spawn_generators, substream
from repro.utils.subsets import (
    all_subsets,
    all_subsets_of_size,
    subset_to_mask,
    mask_to_subset,
    subset_key,
    binomial,
)
from repro.utils.validation import (
    check_square,
    check_probability,
    check_subset,
    check_positive_int,
)

__all__ = [
    "array_fingerprint",
    "matrix_fingerprint",
    "as_generator",
    "spawn_generators",
    "substream",
    "all_subsets",
    "all_subsets_of_size",
    "subset_to_mask",
    "mask_to_subset",
    "subset_key",
    "binomial",
    "check_square",
    "check_probability",
    "check_subset",
    "check_positive_int",
]
