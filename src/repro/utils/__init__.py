"""Shared utilities: RNG handling, subset helpers, argument validation."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.subsets import (
    all_subsets,
    all_subsets_of_size,
    subset_to_mask,
    mask_to_subset,
    subset_key,
    binomial,
)
from repro.utils.validation import (
    check_square,
    check_probability,
    check_subset,
    check_positive_int,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "all_subsets",
    "all_subsets_of_size",
    "subset_to_mask",
    "mask_to_subset",
    "subset_key",
    "binomial",
    "check_square",
    "check_probability",
    "check_subset",
    "check_positive_int",
]
