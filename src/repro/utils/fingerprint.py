"""Content fingerprints for arrays and kernel parameters.

The serving layer (:mod:`repro.service`) memoizes expensive per-kernel
artifacts — eigendecompositions, PSD factors, ESP tables — keyed by *content*,
not by object identity: two registrations of numerically equal ensembles share
one cache entry, and mutating a matrix (which callers should not do, but can)
produces a different key instead of silently stale results.

Fingerprints are SHA-256 digests over the raw array bytes together with shape
and dtype, plus any extra scalar parameters (``k``, partition structure, ...).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

import numpy as np


def array_fingerprint(*arrays: np.ndarray, extra: Iterable = ()) -> str:
    """Hex digest identifying the content of ``arrays`` (+ scalar ``extra``).

    Arrays are hashed as ``(dtype, shape, C-contiguous bytes)`` so equal
    content always maps to an equal fingerprint regardless of memory layout.
    """
    digest = hashlib.sha256()
    for array in arrays:
        a = np.ascontiguousarray(array)
        digest.update(str(a.dtype).encode())
        digest.update(repr(a.shape).encode())
        digest.update(a.tobytes())
    for item in extra:
        digest.update(b"|")
        digest.update(repr(item).encode())
    return digest.hexdigest()


def chain_fingerprint(previous: str, *arrays: np.ndarray,
                      extra: Iterable = ()) -> str:
    """Derived fingerprint of a kernel after one incremental update.

    Digests the *predecessor's* fingerprint together with the update's delta
    payload (arrays + scalar signature) — never the mutated matrix itself.
    That makes the chain computable by anyone holding the base fingerprint
    and the update log (e.g. a :class:`~repro.cluster.client.ClusterClient`
    shipping deltas), while still changing whenever content, update order,
    or update parameters change.  The ``"chain"`` tag keeps derived keys
    disjoint from content fingerprints of equal arrays.
    """
    return array_fingerprint(*arrays, extra=("chain", previous, *tuple(extra)))


def matrix_fingerprint(matrix: np.ndarray, *, kind: str = "matrix",
                       params: Optional[Iterable] = None) -> str:
    """Fingerprint of one kernel matrix tagged with its distribution kind."""
    return array_fingerprint(np.asarray(matrix, dtype=float),
                             extra=(kind, *tuple(params or ())))


def partition_keys(parts: Optional[Iterable] = None,
                   counts: Optional[Iterable] = None):
    """Canonical (hashable) forms of a partition kernel's structure.

    Part order and within-part element order do not change the distribution,
    so they must not change the fingerprint either — elements are sorted
    per part before hashing.
    """
    parts_key = (tuple(tuple(sorted(int(i) for i in part)) for part in parts)
                 if parts is not None else None)
    counts_key = tuple(int(c) for c in counts) if counts is not None else None
    return parts_key, counts_key


def kernel_fingerprint(matrix: np.ndarray, *, kind: str = "symmetric",
                       parts: Optional[Iterable] = None,
                       counts: Optional[Iterable] = None) -> str:
    """The registry/cluster content key of one kernel: matrix + structure.

    This single derivation is shared by
    :meth:`repro.service.registry.KernelRegistry.register` (which keys the
    factorization cache with it) and the cluster layer's
    :class:`~repro.cluster.ring.HashRing` routing (which must agree with the
    owning node's registry *before* talking to it) — two implementations
    drifting apart would silently break placement.
    """
    parts_key, counts_key = partition_keys(parts, counts)
    return array_fingerprint(np.asarray(matrix, dtype=float),
                             extra=(kind, parts_key, counts_key))
