"""Lightweight argument validation used across the library.

The helpers raise ``ValueError``/``TypeError`` with actionable messages so
user-facing samplers fail fast on malformed kernels, probabilities, or subsets.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class ValidationError(ValueError):
    """Raised when user-supplied kernel data is malformed.

    A subclass of ``ValueError`` so existing ``except ValueError`` handlers
    keep working; raised by the validators below (and the low-rank kernel
    front end) so malformed factors fail at construction with an actionable
    message instead of surfacing as a deep LAPACK error mid-sample.
    """


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a 2-D square ``float64`` array or raise."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square 2-D array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_probability(value: float, name: str = "probability", *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (with configurable open ends)."""
    p = float(value)
    if not np.isfinite(p):
        raise ValueError(f"{name} must be finite, got {p}")
    low_ok = p > 0 or (allow_zero and p == 0)
    high_ok = p < 1 or (allow_one and p == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {p}")
    return p


def check_subset(subset: Iterable[int], n: int, name: str = "subset") -> tuple:
    """Validate that ``subset`` has distinct elements inside ``[0, n)``."""
    items = tuple(int(i) for i in subset)
    if len(set(items)) != len(items):
        raise ValueError(f"{name} has repeated elements: {items}")
    if items and (min(items) < 0 or max(items) >= n):
        raise ValueError(f"{name} {items} is outside the ground set [0, {n})")
    return tuple(sorted(items))


def check_factor(factor: np.ndarray, name: str = "factor", *,
                 require_full_rank: bool = True, tol: float = 1e-10) -> np.ndarray:
    """Validate an explicit ``n x k`` kernel factor ``B`` (for ``L = B Bᵀ``).

    Returns a C-contiguous ``float64`` copy-on-demand canonicalization of
    ``factor`` — fortran-ordered, non-contiguous, or integer input is accepted
    and normalized, because memory layout is a representation detail, not an
    error.  What *is* rejected (with :class:`ValidationError`):

    * anything that is not a 2-D array with ``n >= 1`` rows and
      ``1 <= k <= n`` columns,
    * non-finite entries,
    * (when ``require_full_rank``) a numerically column-rank-deficient ``B``
      — the Gram ``BᵀB`` would be singular, and downstream eigensolves /
      determinant ratios degrade in confusing ways; trim the dependent
      columns (e.g. via ``LowRankKernel.from_dense``) instead.

    The rank test is one ``k x k`` ``eigvalsh`` — ``O(n k² + k³)``, never
    ``O(n²)`` — so huge-``n`` factors validate in factor-sized time.
    """
    arr = np.ascontiguousarray(factor, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be a 2-D (n, k) factor array, got shape {arr.shape}")
    n, k = arr.shape
    if n < 1 or k < 1:
        raise ValidationError(
            f"{name} must have at least one row and one column, got shape {arr.shape}")
    if k > n:
        raise ValidationError(
            f"{name} has more columns than rows ({k} > {n}): a rank-{k} factor of "
            f"an {n}-element ground set is over-complete; pass at most n columns")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    if require_full_rank:
        gram = arr.T @ arr
        eigenvalues = np.linalg.eigvalsh(0.5 * (gram + gram.T))
        top = float(eigenvalues.max(initial=0.0))
        rank = int(np.sum(eigenvalues > tol * max(top, 1.0))) if top > 0 else 0
        if rank < k:
            raise ValidationError(
                f"{name} is numerically column-rank-deficient (rank {rank} < k={k}); "
                "drop the dependent columns (e.g. rebuild with "
                "LowRankKernel.from_dense or a smaller rank)")
    return arr


def check_positive_int(value: int, name: str = "value", *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer at least ``minimum``."""
    if not float(value).is_integer():
        raise ValueError(f"{name} must be an integer, got {value}")
    v = int(value)
    if v < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {v}")
    return v
