"""Lightweight argument validation used across the library.

The helpers raise ``ValueError``/``TypeError`` with actionable messages so
user-facing samplers fail fast on malformed kernels, probabilities, or subsets.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a 2-D square ``float64`` array or raise."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square 2-D array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_probability(value: float, name: str = "probability", *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (with configurable open ends)."""
    p = float(value)
    if not np.isfinite(p):
        raise ValueError(f"{name} must be finite, got {p}")
    low_ok = p > 0 or (allow_zero and p == 0)
    high_ok = p < 1 or (allow_one and p == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {p}")
    return p


def check_subset(subset: Iterable[int], n: int, name: str = "subset") -> tuple:
    """Validate that ``subset`` has distinct elements inside ``[0, n)``."""
    items = tuple(int(i) for i in subset)
    if len(set(items)) != len(items):
        raise ValueError(f"{name} has repeated elements: {items}")
    if items and (min(items) < 0 or max(items) >= n):
        raise ValueError(f"{name} {items} is outside the ground set [0, {n})")
    return tuple(sorted(items))


def check_positive_int(value: int, name: str = "value", *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer at least ``minimum``."""
    if not float(value).is_integer():
        raise ValueError(f"{name} must be an integer, got {value}")
    v = int(value)
    if v < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {v}")
    return v
