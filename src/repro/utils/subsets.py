"""Subset enumeration and encoding helpers.

Subsets of the ground set ``[n] = {0, ..., n-1}`` are represented throughout
the library as sorted tuples of Python ints (hashable, order-free), or as
boolean masks when vectorized access is needed.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

Subset = Tuple[int, ...]


def subset_key(items: Iterable[int]) -> Subset:
    """Canonical hashable representation of a subset (sorted tuple)."""
    return tuple(sorted(int(i) for i in items))


def all_subsets(n: int) -> Iterator[Subset]:
    """Yield all ``2**n`` subsets of ``[n]`` as sorted tuples."""
    for size in range(n + 1):
        yield from all_subsets_of_size(n, size)


def all_subsets_of_size(n: int, k: int) -> Iterator[Subset]:
    """Yield all ``C(n, k)`` subsets of ``[n]`` of size exactly ``k``."""
    if k < 0 or k > n:
        return
    yield from combinations(range(n), k)


def subset_to_mask(subset: Iterable[int], n: int) -> np.ndarray:
    """Boolean indicator vector of length ``n`` for ``subset``."""
    mask = np.zeros(n, dtype=bool)
    idx = list(subset)
    if idx:
        arr = np.asarray(idx, dtype=int)
        if arr.min() < 0 or arr.max() >= n:
            raise ValueError(f"subset {idx} out of range for ground set of size {n}")
        mask[arr] = True
    return mask


def mask_to_subset(mask: Sequence[bool]) -> Subset:
    """Inverse of :func:`subset_to_mask`."""
    return tuple(int(i) for i in np.flatnonzero(np.asarray(mask, dtype=bool)))


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` (0 outside the valid range)."""
    if k < 0 or k > n or n < 0:
        return 0
    return comb(n, k)
